package core

import (
	"context"
	"testing"
	"time"

	"datacron/internal/gen"
	"datacron/internal/mobility"
	"datacron/internal/ontology"
	"datacron/internal/rdf"
	"datacron/internal/store"
	"datacron/internal/synopses"
)

func TestPipelineAviationEndToEnd(t *testing.T) {
	p, err := New(WithConfig(Config{
		Domain:         mobility.Aviation,
		SampleInterval: 8 * time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	sim := gen.NewFlightSim(gen.FlightSimConfig{Seed: 55, NumFlights: 5})
	_, reports := sim.Run()
	if err := p.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	sum, err := p.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.RawIn != int64(len(reports)) {
		t.Errorf("raw = %d, want %d", sum.RawIn, len(reports))
	}
	// The aviation synopsis must contain the flight-phase critical points.
	recs, err := p.Broker.Drain(TopicSynopses)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[synopses.CriticalType]int{}
	for _, rec := range recs {
		cp, err := synopses.UnmarshalCriticalPoint(rec.Value)
		if err != nil {
			t.Fatalf("bad synopsis record: %v", err)
		}
		counts[cp.Type]++
	}
	if counts[synopses.Takeoff] < 5 {
		t.Errorf("takeoffs = %d, want >= 5", counts[synopses.Takeoff])
	}
	if counts[synopses.Landing] < 5 {
		t.Errorf("landings = %d, want >= 5", counts[synopses.Landing])
	}
	if counts[synopses.ChangeInAltitude] < 10 {
		t.Errorf("altitude changes = %d", counts[synopses.ChangeInAltitude])
	}
	// KG over Iberia, queried via the text dialect.
	kg, err := p.BuildKnowledgeGraph(store.STCellConfig{
		Extent: gen.IberiaRegion, Cols: 48, Rows: 48,
		Epoch: gen.DefaultStart, BucketSize: time.Hour, TimeBuckets: 24 * 30,
	}, store.NewPropertyTable())
	if err != nil {
		t.Fatal(err)
	}
	nodes, _, err := kg.Query(`
		SELECT ?n WHERE {
			?n rdf:type dtc:SemanticNode .
			?n dtc:speed ?s .
		}
		WITHIN(-10.0, 35.5, 4.5, 44.5)
		DURING("2016-04-01T00:00:00Z", "2016-04-03T00:00:00Z")
	`, store.EncodedPruning)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) == 0 {
		t.Error("no aviation nodes found by ST query")
	}
	// Trajectory parts can be derived from the archived synopsis.
	var cps []synopses.CriticalPoint
	for _, rec := range recs {
		cp, _ := synopses.UnmarshalCriticalPoint(rec.Value)
		cps = append(cps, cp)
	}
	segs := synopses.SegmentCriticalPoints(cps)
	if len(segs) < 5 {
		t.Errorf("segments = %d, want >= 5 (one leg per flight)", len(segs))
	}
	// Lift one segment into the ontology and sanity-check the structure.
	g := rdf.NewGraph()
	seg := segs[0]
	seqs := make([]int, len(seg.Points))
	for i := range seg.Points {
		seqs[i] = i
	}
	g.AddAll(ontology.PartTriples(seg.MoverID, seg.Index, rdf.Time(seg.Start), rdf.Time(seg.End), seqs))
	if len(g.Subjects(rdf.RDFType, ontology.ClassTrajectoryPart)) != 1 {
		t.Error("trajectory part triples malformed")
	}
}
