package core

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"datacron/internal/analytics"
	"datacron/internal/msg"
	"datacron/internal/rdf"
	"datacron/internal/store"
	"datacron/internal/synopses"
)

// This file provides the batch layer's persistence path — the stand-in for
// the paper's HDFS/Parquet archive: the RDF-ized stream can be exported as
// an N-Triples archive file and a knowledge graph can be rebuilt from one,
// so offline analytics survive process restarts.

// ExportTriples drains the pipeline's triples topic and writes every triple
// as N-Triples to w, returning the count written. The broker log is left
// intact (drain re-reads from offset zero).
func (p *Pipeline) ExportTriples(w io.Writer) (int64, error) {
	recs, err := p.Broker.Drain(TopicTriples)
	if err != nil {
		return 0, err
	}
	var n int64
	bw := newCountingWriter(w)
	for _, rec := range recs {
		ts, err := rdf.ReadNTriples(bytes.NewReader(rec.Value))
		if err != nil {
			continue // skip corrupt lines rather than abort the archive
		}
		if err := rdf.WriteNTriples(bw, ts); err != nil {
			return n, fmt.Errorf("core: exporting triples: %w", err)
		}
		n += int64(len(ts))
	}
	return n, nil
}

// LoadArchive builds a knowledge graph from an N-Triples archive produced
// by ExportTriples (or any N-Triples source). Triples are loaded in batches
// so spatio-temporal subjects whose position/time stamps arrive together
// get cell-embedding IDs.
func LoadArchive(r io.Reader, cfg store.STCellConfig, layout store.Layout) (*store.Store, error) {
	triples, err := rdf.ReadNTriples(r)
	if err != nil {
		return nil, fmt.Errorf("core: loading archive: %w", err)
	}
	st := store.New(cfg, layout)
	const batch = 10_000
	for i := 0; i < len(triples); i += batch {
		end := i + batch
		if end > len(triples) {
			end = len(triples)
		}
		st.Load(triples[i:end])
	}
	return st, nil
}

// MinePatterns runs the offline Complex Event Analyzer over the archived
// synopses topic: it mines frequent critical-point sequences and returns
// the top-k non-redundant proposals, ready to compile into the online
// recogniser — Figure 2's batch-to-real-time feedback loop.
func (p *Pipeline) MinePatterns(cfg analytics.MineConfig, k int) ([]analytics.FrequentPattern, error) {
	recs, err := p.Broker.Drain(TopicSynopses)
	if err != nil {
		return nil, err
	}
	cps := make([]synopses.CriticalPoint, 0, len(recs))
	for _, rec := range recs {
		cp, err := synopses.UnmarshalCriticalPoint(rec.Value)
		if err != nil {
			continue
		}
		cps = append(cps, cp)
	}
	return analytics.ProposePatterns(cps, cfg, k), nil
}

// ReplayTopic republishes an archived topic's records into another broker,
// supporting the paper's "reprocess the archive through the real-time
// layer" workflows (e.g. re-running synopses with new thresholds). The
// context cancels the replay when the destination topic is bounded and
// producing blocks on backpressure.
func ReplayTopic(ctx context.Context, from *msg.Broker, topic string, to *msg.Broker) (int64, error) {
	recs, err := from.Drain(topic)
	if err != nil {
		return 0, err
	}
	if err := to.EnsureTopic(topic, 4); err != nil {
		return 0, err
	}
	var n int64
	for _, rec := range recs {
		if _, err := to.Produce(ctx, topic, rec.Key, rec.Value, rec.Time); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// countingWriter counts bytes for diagnostics while delegating writes.
type countingWriter struct {
	w io.Writer
	n int64
}

func newCountingWriter(w io.Writer) *countingWriter { return &countingWriter{w: w} }

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
