package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"datacron/internal/gen"
	"datacron/internal/geo"
	"datacron/internal/linkdisc"
	"datacron/internal/lowlevel"
	"datacron/internal/mobility"
	"datacron/internal/ontology"
	"datacron/internal/rdf"
	"datacron/internal/store"
	"datacron/internal/synopses"
)

var region = geo.Rect{MinLon: 22, MinLat: 36, MaxLon: 28, MaxLat: 41}

func maritimePipeline(t *testing.T, withCER bool, extra ...Option) (*Pipeline, []mobility.Report) {
	t.Helper()
	return shardedMaritimePipeline(t, withCER, 1, extra...)
}

// shardedMaritimePipeline is maritimePipeline with an explicit shard
// count; the shard determinism tests compare runs across counts. Extra
// options are appended after the config.
func shardedMaritimePipeline(t *testing.T, withCER bool, shards int, extra ...Option) (*Pipeline, []mobility.Report) {
	t.Helper()
	areas := gen.Areas(5, gen.ProtectedArea, 40, region, 3_000, 25_000)
	ports := gen.Ports(6, 30, region)
	var statics []linkdisc.StaticEntity
	var regions []lowlevel.Region
	for _, a := range areas {
		statics = append(statics, linkdisc.StaticEntity{ID: a.ID, Geom: a.Geom})
		regions = append(regions, lowlevel.Region{ID: a.ID, Geom: a.Geom})
	}
	for _, p := range ports {
		statics = append(statics, linkdisc.StaticEntity{ID: p.ID, Geom: p.Pos})
	}
	cfg := Config{
		Domain: mobility.Maritime,
		Link: linkdisc.Config{
			Extent: region, GridCols: 64, GridRows: 64,
			MaskResolution: 8, NearDistanceM: 5_000,
		},
		Statics: statics,
		Regions: regions,
	}
	if withCER {
		// Train the symbol model on a synthetic critical-type stream.
		src := gen.NewMarkovSource(4, criticalAlphabet(), 1, 0.5)
		cfg.Pattern = "change_in_heading change_in_heading"
		cfg.Alphabet = criticalAlphabet()
		cfg.ModelOrder = 1
		cfg.Theta = 0.4
		cfg.TrainSymbols = src.Generate(50_000)
	}
	cfg.Shards = shards
	p, err := New(append([]Option{WithConfig(cfg)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	sim := gen.NewVesselSim(gen.VesselSimConfig{Seed: 77, Region: region, GapProb: 0.005})
	reports := sim.Run(2 * time.Hour)
	return p, reports
}

func criticalAlphabet() []string {
	return []string{
		string(synopses.TrajectoryStart), string(synopses.TrajectoryEnd),
		string(synopses.StopStart), string(synopses.StopEnd),
		string(synopses.SlowMotionStart), string(synopses.SlowMotionEnd),
		string(synopses.ChangeInHeading), string(synopses.SpeedChange),
		string(synopses.GapStart), string(synopses.GapEnd),
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	p, reports := maritimePipeline(t, false)
	if err := p.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	sum, err := p.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.RawIn != int64(len(reports)) {
		t.Errorf("raw in = %d, want %d", sum.RawIn, len(reports))
	}
	if sum.CriticalPoints == 0 {
		t.Fatal("no critical points")
	}
	if sum.Compression < 0.5 {
		t.Errorf("compression = %.2f", sum.Compression)
	}
	if sum.Triples == 0 {
		t.Error("no triples produced")
	}
	if sum.Predictions == 0 {
		t.Error("no FLP predictions")
	}
	// Dashboard has the fleet.
	snap := p.Dashboard.Snapshot(time.Now())
	if len(snap.Positions) < 10 {
		t.Errorf("dashboard positions = %d", len(snap.Positions))
	}
	if len(snap.Criticals) == 0 {
		t.Error("dashboard criticals empty")
	}
	// Profiler collected per-trajectory statistics.
	ids := p.Profiler.MoverIDs()
	if len(ids) < 10 {
		t.Errorf("profiler movers = %d", len(ids))
	}
	prof := p.Profiler.Profile(ids[0])
	if prof.Speed.N() == 0 {
		t.Error("no speed stats")
	}
}

func TestPipelineKnowledgeGraph(t *testing.T) {
	p, reports := maritimePipeline(t, false)
	if err := p.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunRealTime(context.Background()); err != nil {
		t.Fatal(err)
	}
	kg, err := p.BuildKnowledgeGraph(store.STCellConfig{
		Extent: region, Cols: 32, Rows: 32,
		Epoch: gen.DefaultStart, BucketSize: time.Hour, TimeBuckets: 24 * 30,
	}, store.NewVerticalPartitioning())
	if err != nil {
		t.Fatal(err)
	}
	if kg.Len() == 0 {
		t.Fatal("empty knowledge graph")
	}
	// Star query: semantic nodes in a spatio-temporal window.
	q := store.StarQuery{
		Patterns: []store.PO{
			{Pred: rdf.RDFType, Obj: ontology.ClassSemanticNode},
			{Pred: ontology.PropSpeed, Obj: nil},
		},
		Rect:      region,
		TimeStart: gen.DefaultStart,
		TimeEnd:   gen.DefaultStart.Add(2 * time.Hour),
	}
	for _, plan := range []store.Plan{store.PostFilter, store.EncodedPruning} {
		got, _, err := kg.StarJoin(q, plan)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Errorf("%v: no results", plan)
		}
	}
	// Both plans agree.
	a, _, _ := kg.StarJoin(q, store.PostFilter)
	b, _, _ := kg.StarJoin(q, store.EncodedPruning)
	if len(a) != len(b) {
		t.Errorf("plans disagree: %d vs %d", len(a), len(b))
	}
}

func TestPipelineWeatherEnrichment(t *testing.T) {
	p, reports := maritimePipeline(t, false)
	p2, err := New(WithConfig(Config{
		Domain:  mobility.Maritime,
		Weather: gen.NewWeatherField(7, gen.DefaultStart),
	}))
	if err != nil {
		t.Fatal(err)
	}
	_ = p // plain pipeline already covered elsewhere
	if err := p2.Ingest(context.Background(), reports[:2000]); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.RunRealTime(context.Background()); err != nil {
		t.Fatal(err)
	}
	kg, err := p2.BuildKnowledgeGraph(store.STCellConfig{
		Extent: region, Epoch: gen.DefaultStart,
	}, store.NewVerticalPartitioning())
	if err != nil {
		t.Fatal(err)
	}
	// Every semantic node carries wind-speed and wave-height annotations.
	nodes, _, err := kg.Query(`SELECT ?n WHERE { ?n rdf:type dtc:SemanticNode . ?n dtc:windSpeed ?w }`, store.PostFilter)
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := kg.Query(`SELECT ?n WHERE { ?n rdf:type dtc:SemanticNode }`, store.PostFilter)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || len(nodes) != len(all) {
		t.Errorf("wind annotations on %d of %d nodes", len(nodes), len(all))
	}
}

func TestPipelineWithCER(t *testing.T) {
	p, reports := maritimePipeline(t, true)
	if err := p.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	sum, err := p.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Forecasts == 0 && sum.Detections == 0 {
		t.Error("CER produced neither forecasts nor detections")
	}
}

func TestPipelineLinksFlow(t *testing.T) {
	p, reports := maritimePipeline(t, false)
	if err := p.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	sum, err := p.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Links == 0 {
		t.Skip("no spatial links in this run (possible with sparse areas)")
	}
	recs, err := p.Broker.Drain(TopicLinks)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(recs)) != sum.Links {
		t.Errorf("links topic has %d records, summary says %d", len(recs), sum.Links)
	}
}

func TestPipelineConfigValidation(t *testing.T) {
	if _, err := New(WithConfig(Config{Pattern: "((", Alphabet: []string{"a"}})); err == nil {
		t.Error("bad pattern should fail")
	}
	if _, err := New(WithConfig(Config{
		Pattern: "a", Alphabet: []string{"a"}, Theta: -3,
	})); err == nil {
		t.Error("bad theta should fail")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{RawIn: 10, CriticalPoints: 2, Compression: 0.8}
	if str := s.String(); str == "" {
		t.Error("empty summary string")
	} else if want := "raw=10"; !contains(str, want) {
		t.Errorf("summary %q missing %q", str, want)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestCriticalPointWireFormat(t *testing.T) {
	cp := synopses.CriticalPoint{
		Report: mobility.Report{ID: "v", Time: gen.DefaultStart, Pos: geo.Pt(23, 37), SpeedKn: 9, Heading: 10},
		Type:   synopses.SpeedChange,
		Delta:  0.4,
	}
	got, err := synopses.UnmarshalCriticalPoint(cp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != cp {
		t.Errorf("round trip: %+v != %+v", got, cp)
	}
	if _, err := synopses.UnmarshalCriticalPoint([]byte("{")); err == nil {
		t.Error("bad JSON should fail")
	}
}

func TestPipelineContextCancellation(t *testing.T) {
	// Cancelling the context while the layer waits for input must
	// terminate the run with the context error, not hang.
	p, _ := maritimePipeline(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := p.RunRealTime(ctx)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled run should return an error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled pipeline did not terminate")
	}
}

func TestPipelineLiveStreaming(t *testing.T) {
	// The real-time layer must work against a live producer, not only a
	// pre-closed log: start RunRealTime first, feed reports concurrently,
	// then close the topic and collect the summary.
	p, reports := maritimePipeline(t, false)
	type result struct {
		sum Summary
		err error
	}
	done := make(chan result, 1)
	go func() {
		sum, err := p.RunRealTime(context.Background())
		done <- result{sum, err}
	}()
	go func() {
		for _, r := range reports {
			if _, err := p.Broker.Produce(context.Background(), TopicRaw, r.ID, r.Marshal(), r.Time); err != nil {
				t.Errorf("produce: %v", err)
				return
			}
		}
		if err := p.Broker.CloseTopic(TopicRaw); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if res.sum.RawIn != int64(len(reports)) {
			t.Errorf("raw = %d, want %d", res.sum.RawIn, len(reports))
		}
		if res.sum.CriticalPoints == 0 {
			t.Error("no critical points in live mode")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("live pipeline did not terminate")
	}
}

func TestPipelineDeterministicSummary(t *testing.T) {
	run := func() Summary {
		p, reports := maritimePipeline(t, false)
		if err := p.Ingest(context.Background(), reports); err != nil {
			t.Fatal(err)
		}
		sum, err := p.RunRealTime(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("summaries differ:\n%v\n%v", a, b)
	}
}
