// Package core wires the datAcron components into the architecture of
// Figure 2: surveillance streams enter through the message broker; the
// real-time layer runs in-situ processing (validity filtering, per-
// trajectory statistics, low-level area events), the synopses generator,
// RDF-ification, spatio-temporal link discovery, future-location prediction
// and complex event forecasting, feeding the situation dashboard; the batch
// layer drains the enriched topics into the spatio-temporal knowledge graph
// store for offline analytics.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"datacron/internal/admin"
	"datacron/internal/cer"
	"datacron/internal/flow"
	"datacron/internal/gen"
	"datacron/internal/health"
	"datacron/internal/linkdisc"
	"datacron/internal/lowlevel"
	"datacron/internal/mobility"
	"datacron/internal/msg"
	"datacron/internal/obs"
	"datacron/internal/obs/slo"
	"datacron/internal/rdf"
	"datacron/internal/shard"
	"datacron/internal/store"
	"datacron/internal/synopses"
	"datacron/internal/va"
)

// ErrBackpressure is returned by Ingest when backpressure blocking on the
// bounded raw topic outlived the caller's context: the deadline passed or
// the context was cancelled while Produce was waiting for the backlog to
// drain. It wraps the context error, so errors.Is matches both.
var ErrBackpressure = errors.New("core: ingest blocked on backpressure")

// Topic names of the Kafka-substitute broker.
const (
	TopicRaw      = "surveillance.raw"
	TopicSynopses = "trajectory.synopses"
	TopicTriples  = "rdf.triples"
	TopicLinks    = "links.discovered"
	TopicEvents   = "events.forecasts"
)

// Config assembles a pipeline.
type Config struct {
	Domain     mobility.Domain
	Synopses   synopses.Config // zero value: domain default
	Link       linkdisc.Config // extent etc.
	Statics    []linkdisc.StaticEntity
	Regions    []lowlevel.Region // monitored zones for low-level events
	Partitions int               // broker partitions (default 4)
	// Shards is the number of parallel shard workers in the real-time run
	// loop (default 1 = serial). Records route to workers by hash of the
	// mover ID, so per-trajectory state stays shard-local, and worker
	// results merge back in submit order — output is byte-identical for
	// any shard count. When checkpointing, the shard count must stay the
	// same across restarts of one checkpoint store.
	Shards int
	// FLP configuration.
	PredictSteps   int           // look-ahead steps per mover (default 8)
	SampleInterval time.Duration // FLP sampling interval (default 10s)
	// CER configuration: when Pattern is non-empty, critical-point type
	// streams per mover are fed to a Wayeb forecaster.
	Pattern      string
	Alphabet     []string
	ModelOrder   int
	Theta        float64
	TrainSymbols []string // training stream for the symbol model
	// Weather enables enrichment: critical points are annotated with the
	// field's wind speed and wave height at their position and time, and
	// the annotations are lifted into the knowledge graph.
	Weather *gen.WeatherField
}

func (c Config) withDefaults() Config {
	if c.Synopses == (synopses.Config{}) {
		if c.Domain == mobility.Aviation {
			c.Synopses = synopses.DefaultAviation()
		} else {
			c.Synopses = synopses.DefaultMaritime()
		}
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.PredictSteps <= 0 {
		c.PredictSteps = 8
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 10 * time.Second
	}
	if c.Theta == 0 {
		c.Theta = 0.5
	}
	return c
}

// Summary reports what a real-time run did.
type Summary struct {
	RawIn          int64
	CriticalPoints int64
	Compression    float64
	AreaEvents     int64
	Links          int64
	Triples        int64
	Predictions    int64
	Detections     int64
	Forecasts      int64
}

func (s Summary) String() string {
	return fmt.Sprintf(
		"raw=%d critical=%d (compression %.1f%%) areaEvents=%d links=%d triples=%d predictions=%d detections=%d forecasts=%d",
		s.RawIn, s.CriticalPoints, s.Compression*100, s.AreaEvents, s.Links,
		s.Triples, s.Predictions, s.Detections, s.Forecasts)
}

// Pipeline is a configured datAcron instance.
type Pipeline struct {
	cfg       Config
	Broker    *msg.Broker
	Dashboard *va.Dashboard
	Profiler  *lowlevel.Profiler

	forecaster *cer.Forecaster

	// Backpressure plane, active only with WithFlow: the raw topic is
	// bounded per flowCfg and shedder drops low-value records before they
	// are produced. shedder is driven only by the Ingest goroutine.
	flowCfg flow.Config
	shedder *flow.Shedder

	obs     *obs.Registry // nil when built with WithObs(nil)
	clock   obs.Clock
	tracer  *obs.Tracer
	sampler *obs.Sampler // head-based record-trace sampler (nil = no sampling)
	slos    *slo.Tracker // freshness SLO tracker (nil without WithSLO)
	log     *slog.Logger // component "core"
	rootLog *slog.Logger // as passed to WithLogger; handed to sub-components

	// Operational plane, present only with WithAdmin.
	admin        *admin.Server
	watchdog     *health.Watchdog
	stopWatchdog context.CancelFunc

	// Component stats captured at the end of the most recent real-time
	// run; guarded because Stats may be called from a monitoring goroutine.
	mu       sync.Mutex
	lastSyn  synopses.Stats
	lastLink linkdisc.Stats
	lastCons msg.ConsumerStats
	lastSum  Summary
	lastFlow FlowStats
	// Shard view of the current (or last) run, set at run start: the
	// per-worker metric registries (nil when the run is serial) and the
	// plane's live per-shard progress.
	shardRegs  []*obs.Registry
	shardStats func() []shard.Stats

	// ingestRecs is the batched-ingest record-header scratch, reused across
	// chunks. Touched only by the Ingest goroutine, like the shedder.
	ingestRecs []msg.Record
}

// newPipeline builds the component set from a defaulted Config; New wires
// observability on top.
func newPipeline(cfg Config) (*Pipeline, error) {
	b := msg.NewBroker()
	for _, t := range []string{TopicRaw, TopicSynopses, TopicTriples, TopicLinks, TopicEvents} {
		if err := b.CreateTopic(t, cfg.Partitions); err != nil {
			return nil, err
		}
	}
	p := &Pipeline{
		cfg:       cfg,
		Broker:    b,
		Dashboard: va.NewDashboard(1000),
		Profiler:  lowlevel.NewProfiler(),
	}
	if cfg.Pattern != "" {
		pat, err := cer.ParsePattern(cfg.Pattern)
		if err != nil {
			return nil, fmt.Errorf("core: pattern: %w", err)
		}
		model := cer.LearnModel(cfg.TrainSymbols, cfg.Alphabet, cfg.ModelOrder, 1)
		p.forecaster, err = cer.NewForecaster(pat, cfg.Alphabet, model, 200, cfg.Theta)
		if err != nil {
			return nil, fmt.Errorf("core: forecaster: %w", err)
		}
	}
	return p, nil
}

// Admin returns the operational HTTP server (nil without WithAdmin). Its
// Addr method reports the bound address, useful with ":0".
func (p *Pipeline) Admin() *admin.Server { return p.admin }

// Watchdog returns the health watchdog (nil without WithAdmin). Tests
// driving a ManualClock can call its Tick directly.
func (p *Pipeline) Watchdog() *health.Watchdog { return p.watchdog }

// Shutdown stops the operational plane: the watchdog loop ends and the
// admin server drains within ctx. Safe without WithAdmin and safe to call
// more than once; the data path is unaffected (cancel the run's context to
// stop it).
func (p *Pipeline) Shutdown(ctx context.Context) error {
	if p.stopWatchdog != nil {
		p.stopWatchdog()
	}
	return p.admin.Shutdown(ctx)
}

// ingestBatch is the number of reports encoded and produced per ProduceBatch
// call on the unshedded ingest path: one byte arena and one broker batch per
// ingestBatch records.
const ingestBatch = 256

// Ingest publishes raw surveillance reports to the broker, keyed by mover
// (preserving per-mover order), then closes the raw topic so the real-time
// layer terminates when it has drained the log. Use for batch experiments;
// live deployments would keep the topic open.
//
// Reports cross the wire in the binary codec (mobility.AppendBinary);
// consumers sniff the format per record, so logs holding legacy JSON replay
// unchanged. Without a shedder, Ingest encodes each ingestBatch-sized chunk
// into one arena and produces it with Broker.ProduceBatch — one lock
// acquisition and one metrics flush per chunk instead of one per record.
//
// With WithFlow, Ingest is the admission boundary: the shedder drops
// low-value records under queue-depth pressure (counted, not errors), a
// DropNewest topic limit turns produce rejections into counted drops, and a
// Block limit makes Produce wait — cancellably — for the backlog to drain.
// When that wait outlives ctx, Ingest returns an error wrapping both
// ErrBackpressure and the context error. Shedding decisions read the live
// queue depth per record, so the shedded path keeps per-record Produce.
func (p *Pipeline) Ingest(ctx context.Context, reports []mobility.Report) error {
	var st FlowStats
	defer func() {
		if p.shedder != nil {
			st.Shedder = p.shedder.Stats()
		}
		p.mu.Lock()
		p.lastFlow = st
		p.mu.Unlock()
	}()
	// Freshness at the ingest boundary: how stale each report already is
	// when it is produced to the raw topic. The per-priority breakdown
	// (lag.ingest.<class>.*) is observed inside the shedder, which knows
	// the classification.
	lagIngest := obs.NewLagStage(p.obs, "ingest")
	if p.shedder != nil {
		return p.ingestShedded(ctx, reports, lagIngest, &st)
	}
	for base := 0; base < len(reports); base += ingestBatch {
		end := base + ingestBatch
		if end > len(reports) {
			end = len(reports)
		}
		if err := p.ingestChunk(ctx, reports[base:end], lagIngest, &st); err != nil {
			return err
		}
	}
	return p.Broker.CloseTopic(TopicRaw)
}

// ingestChunk encodes one chunk into a single byte arena and produces it as
// one broker batch. The arena is fresh per chunk — the broker retains record
// values in its log, so the encode buffer cannot be pooled — but the record
// headers are a per-pipeline scratch reused across chunks, so the steady
// state allocates once per chunk, not per record.
func (p *Pipeline) ingestChunk(ctx context.Context, chunk []mobility.Report, lagIngest obs.LagStage, st *FlowStats) error {
	size := 0
	for i := range chunk {
		size += chunk[i].BinarySize()
	}
	arena := make([]byte, 0, size)
	if cap(p.ingestRecs) < len(chunk) {
		p.ingestRecs = make([]msg.Record, len(chunk))
	}
	recs := p.ingestRecs[:len(chunk)]
	for i := range chunk {
		start := len(arena)
		arena = chunk[i].AppendBinary(arena)
		recs[i] = msg.Record{
			Key:   chunk[i].ID,
			Value: arena[start:len(arena):len(arena)],
			Time:  chunk[i].Time,
		}
	}
	admitted, err := p.Broker.ProduceBatch(ctx, TopicRaw, recs)
	// Batch-aware freshness: one clock read per chunk, one lag observation
	// per admitted record, so the ingest stage's histogram counts exactly
	// what the per-record path would.
	now := p.clock.Now()
	for i := range recs {
		if recs[i].Offset != msg.RejectedOffset {
			lagIngest.Observe(now, recs[i].Time)
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return backpressureErr(err)
		}
		return err
	}
	// Policy refusals (drop-newest overload) are counted, not errors.
	st.RejectedFull += int64(len(chunk) - admitted)
	return nil
}

// ingestShedded is the per-record admission path used with WithFlow: the
// shedder consults the live raw-topic depth before every record, so records
// are produced one at a time (in the binary codec) and batch amortization
// does not apply.
func (p *Pipeline) ingestShedded(ctx context.Context, reports []mobility.Report, lagIngest obs.LagStage, st *FlowStats) error {
	for _, r := range reports {
		depth, err := p.Broker.Backlog(TopicRaw)
		if err != nil {
			return err
		}
		if err := p.shedder.Admit(r.ID, r.Time, int(depth)); err != nil {
			continue // shed by priority: bookkept in the shedder, not an error
		}
		_, err = p.Broker.Produce(ctx, TopicRaw, r.ID, r.AppendBinary(make([]byte, 0, r.BinarySize())), r.Time)
		switch {
		case err == nil:
			lagIngest.Observe(p.clock.Now(), r.Time)
		case errors.Is(err, msg.ErrTopicFull):
			st.RejectedFull++ // drop-newest overload: counted, keep going
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return backpressureErr(err)
		default:
			return err
		}
	}
	return p.Broker.CloseTopic(TopicRaw)
}

// backpressureErr wraps a cancellation that hit a blocked produce; a named
// cold-path constructor so the per-record ingest loop stays allocation-free
// on admitted records.
func backpressureErr(err error) error {
	return fmt.Errorf("%w: %w", ErrBackpressure, err)
}

// IngestBackground is Ingest with context.Background().
//
// Deprecated: use Ingest with a real context so backpressure blocking on a
// bounded raw topic stays cancellable. This shim will be removed one
// release after the context-first API landed.
func (p *Pipeline) IngestBackground(reports []mobility.Report) error {
	return p.Ingest(context.Background(), reports)
}

// RunRealTime consumes the raw topic through the full real-time layer until
// the topic closes or the context is cancelled, and returns the run summary.
// It is RunWithRecovery without checkpointing; see recovery.go.
func (p *Pipeline) RunRealTime(ctx context.Context) (Summary, error) {
	return p.RunWithRecovery(ctx, nil)
}

// publishTriples sends triples to the triples topic in N-Triples lines.
func (p *Pipeline) publishTriples(ctx context.Context, triples []rdf.Triple, ts time.Time) error {
	for _, t := range triples {
		if _, err := p.Broker.Produce(ctx, TopicTriples, t.S.Key(), []byte(t.String()), ts); err != nil {
			return err
		}
	}
	return nil
}

// BuildKnowledgeGraph drains the triples topic (the batch layer's input)
// into a spatio-temporal store with the given cell configuration and layout.
func (p *Pipeline) BuildKnowledgeGraph(cfg store.STCellConfig, layout store.Layout) (*store.Store, error) {
	recs, err := p.Broker.Drain(TopicTriples)
	if err != nil {
		return nil, err
	}
	// Group the N-Triples lines into one batch per subject-bearing record
	// ordering; Load batches per 10k lines to bound memory.
	st := store.New(cfg, layout)
	st.Instrument(p.obs)
	var batch []rdf.Triple
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		st.Load(batch)
		batch = batch[:0]
		return nil
	}
	for _, rec := range recs {
		ts, err := rdf.ReadNTriples(bytes.NewReader(rec.Value))
		if err != nil {
			continue
		}
		batch = append(batch, ts...)
		if len(batch) >= 10_000 {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return st, nil
}
