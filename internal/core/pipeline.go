// Package core wires the datAcron components into the architecture of
// Figure 2: surveillance streams enter through the message broker; the
// real-time layer runs in-situ processing (validity filtering, per-
// trajectory statistics, low-level area events), the synopses generator,
// RDF-ification, spatio-temporal link discovery, future-location prediction
// and complex event forecasting, feeding the situation dashboard; the batch
// layer drains the enriched topics into the spatio-temporal knowledge graph
// store for offline analytics.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"datacron/internal/cer"
	"datacron/internal/flp"
	"datacron/internal/gen"
	"datacron/internal/linkdisc"
	"datacron/internal/lowlevel"
	"datacron/internal/mobility"
	"datacron/internal/msg"
	"datacron/internal/ontology"
	"datacron/internal/rdf"
	"datacron/internal/rdfgen"
	"datacron/internal/store"
	"datacron/internal/synopses"
	"datacron/internal/va"
)

// Topic names of the Kafka-substitute broker.
const (
	TopicRaw      = "surveillance.raw"
	TopicSynopses = "trajectory.synopses"
	TopicTriples  = "rdf.triples"
	TopicLinks    = "links.discovered"
	TopicEvents   = "events.forecasts"
)

// Config assembles a pipeline.
type Config struct {
	Domain     mobility.Domain
	Synopses   synopses.Config // zero value: domain default
	Link       linkdisc.Config // extent etc.
	Statics    []linkdisc.StaticEntity
	Regions    []lowlevel.Region // monitored zones for low-level events
	Partitions int               // broker partitions (default 4)
	// FLP configuration.
	PredictSteps   int           // look-ahead steps per mover (default 8)
	SampleInterval time.Duration // FLP sampling interval (default 10s)
	// CER configuration: when Pattern is non-empty, critical-point type
	// streams per mover are fed to a Wayeb forecaster.
	Pattern      string
	Alphabet     []string
	ModelOrder   int
	Theta        float64
	TrainSymbols []string // training stream for the symbol model
	// Weather enables enrichment: critical points are annotated with the
	// field's wind speed and wave height at their position and time, and
	// the annotations are lifted into the knowledge graph.
	Weather *gen.WeatherField
}

func (c Config) withDefaults() Config {
	if c.Synopses == (synopses.Config{}) {
		if c.Domain == mobility.Aviation {
			c.Synopses = synopses.DefaultAviation()
		} else {
			c.Synopses = synopses.DefaultMaritime()
		}
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.PredictSteps <= 0 {
		c.PredictSteps = 8
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 10 * time.Second
	}
	if c.Theta == 0 {
		c.Theta = 0.5
	}
	return c
}

// Summary reports what a real-time run did.
type Summary struct {
	RawIn          int64
	CriticalPoints int64
	Compression    float64
	AreaEvents     int64
	Links          int64
	Triples        int64
	Predictions    int64
	Detections     int64
	Forecasts      int64
}

func (s Summary) String() string {
	return fmt.Sprintf(
		"raw=%d critical=%d (compression %.1f%%) areaEvents=%d links=%d triples=%d predictions=%d detections=%d forecasts=%d",
		s.RawIn, s.CriticalPoints, s.Compression*100, s.AreaEvents, s.Links,
		s.Triples, s.Predictions, s.Detections, s.Forecasts)
}

// Pipeline is a configured datAcron instance.
type Pipeline struct {
	cfg       Config
	Broker    *msg.Broker
	Dashboard *va.Dashboard
	Profiler  *lowlevel.Profiler

	forecaster *cer.Forecaster
}

// NewPipeline creates the broker topics and components.
func NewPipeline(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	b := msg.NewBroker()
	for _, t := range []string{TopicRaw, TopicSynopses, TopicTriples, TopicLinks, TopicEvents} {
		if err := b.CreateTopic(t, cfg.Partitions); err != nil {
			return nil, err
		}
	}
	p := &Pipeline{
		cfg:       cfg,
		Broker:    b,
		Dashboard: va.NewDashboard(1000),
		Profiler:  lowlevel.NewProfiler(),
	}
	if cfg.Pattern != "" {
		pat, err := cer.ParsePattern(cfg.Pattern)
		if err != nil {
			return nil, fmt.Errorf("core: pattern: %w", err)
		}
		model := cer.LearnModel(cfg.TrainSymbols, cfg.Alphabet, cfg.ModelOrder, 1)
		p.forecaster, err = cer.NewForecaster(pat, cfg.Alphabet, model, 200, cfg.Theta)
		if err != nil {
			return nil, fmt.Errorf("core: forecaster: %w", err)
		}
	}
	return p, nil
}

// Ingest publishes raw surveillance reports to the broker, keyed by mover
// (preserving per-mover order), then closes the raw topic so the real-time
// layer terminates when it has drained the log. Use for batch experiments;
// live deployments would keep the topic open.
func (p *Pipeline) Ingest(reports []mobility.Report) error {
	for _, r := range reports {
		if _, err := p.Broker.Produce(TopicRaw, r.ID, r.Marshal(), r.Time); err != nil {
			return err
		}
	}
	return p.Broker.CloseTopic(TopicRaw)
}

// RunRealTime consumes the raw topic through the full real-time layer until
// the topic closes or the context is cancelled, and returns the run summary.
func (p *Pipeline) RunRealTime(ctx context.Context) (Summary, error) {
	var sum Summary
	cons, err := p.Broker.NewConsumer("realtime", TopicRaw, "rt-1")
	if err != nil {
		return sum, err
	}
	defer cons.Close()

	sg := synopses.NewGenerator(p.cfg.Synopses)
	areaMon := lowlevel.NewAreaMonitor(p.cfg.Regions, 64)
	var disc *linkdisc.Discoverer
	if len(p.cfg.Statics) > 0 {
		disc = linkdisc.NewDiscoverer(p.cfg.Link, p.cfg.Statics)
	}
	rdfGen := rdfgen.CriticalPointGenerator()
	predictors := map[string]flp.Predictor{}
	seq := 0

	processCritical := func(cp synopses.CriticalPoint) error {
		sum.CriticalPoints++
		p.Dashboard.AddCritical(cp)
		// Publish the synopsis record.
		if _, err := p.Broker.Produce(TopicSynopses, cp.ID, cp.Marshal(), cp.Time); err != nil {
			return err
		}
		// RDF-ify.
		triples := rdfGen.Generate(rdfgen.CriticalPointRecord(seq, cp))
		// Weather enrichment: annotate the semantic node with the ambient
		// conditions at its position and time.
		if p.cfg.Weather != nil {
			node := ontology.NodeIRI(cp.ID, seq)
			triples = append(triples,
				rdf.Triple{S: node, P: ontology.PropWindSpeed,
					O: rdf.Float(p.cfg.Weather.WindSpeed(cp.Pos, cp.Time))},
				rdf.Triple{S: node, P: ontology.PropWaveHeight,
					O: rdf.Float(p.cfg.Weather.WaveHeight(cp.Pos, cp.Time))},
			)
		}
		sum.Triples += int64(len(triples))
		if err := p.publishTriples(triples, cp.Time); err != nil {
			return err
		}
		// Link discovery on the critical point.
		if disc != nil {
			for _, l := range disc.ProcessPoint(cp.ID, cp.Time, cp.Pos) {
				sum.Links++
				p.Dashboard.AddLink(l)
				if _, err := p.Broker.Produce(TopicLinks, l.Source, []byte(l.Triple().String()), l.Time); err != nil {
					return err
				}
				sum.Triples++
				if err := p.publishTriples([]rdf.Triple{l.Triple()}, l.Time); err != nil {
					return err
				}
			}
		}
		// Complex event forecasting on the critical-point type stream.
		if p.forecaster != nil {
			detected, fc, ok := p.forecaster.Process(string(cp.Type))
			if detected {
				sum.Detections++
				p.Dashboard.AddEventNote(fmt.Sprintf("%s: pattern detected at %s", cp.ID, cp.Time.Format(time.RFC3339)))
			}
			if ok {
				sum.Forecasts++
				note := fmt.Sprintf("%s: completion expected in %d-%d events (p=%.2f)", cp.ID, fc.Start, fc.End, fc.Prob)
				p.Dashboard.AddEventNote(note)
				if _, err := p.Broker.Produce(TopicEvents, cp.ID, []byte(note), cp.Time); err != nil {
					return err
				}
			}
		}
		seq++
		return nil
	}

	for {
		recs, err := cons.Poll(ctx, 256)
		if errors.Is(err, msg.ErrClosed) {
			break
		}
		if err != nil {
			return sum, err
		}
		for _, rec := range recs {
			r, err := mobility.UnmarshalReport(rec.Value)
			if err != nil {
				continue // corrupt record: dropped by the cleaning stage
			}
			sum.RawIn++
			// In-situ processing.
			if r.Valid() {
				p.Profiler.Observe(r)
				sum.AreaEvents += int64(len(areaMon.Update(r)))
				p.Dashboard.UpdatePosition(r)
				// Future location prediction.
				pred, ok := predictors[r.ID]
				if !ok {
					pred = flp.NewRMFStar(p.cfg.SampleInterval)
					predictors[r.ID] = pred
				}
				pred.Observe(r)
				if pts := pred.Predict(p.cfg.PredictSteps); pts != nil {
					sum.Predictions++
					p.Dashboard.SetPrediction(r.ID, pts)
				}
			}
			// Synopses generation (applies its own noise filters).
			for _, cp := range sg.Process(r) {
				if err := processCritical(cp); err != nil {
					return sum, err
				}
			}
			cons.Commit(rec)
		}
	}
	// Flush trajectory ends.
	for _, cp := range sg.Flush() {
		if err := processCritical(cp); err != nil {
			return sum, err
		}
	}
	for _, t := range []string{TopicSynopses, TopicTriples, TopicLinks, TopicEvents} {
		if err := p.Broker.CloseTopic(t); err != nil {
			return sum, err
		}
	}
	sum.Compression = sg.Stats().CompressionRatio()
	return sum, nil
}

// publishTriples sends triples to the triples topic in N-Triples lines.
func (p *Pipeline) publishTriples(triples []rdf.Triple, ts time.Time) error {
	for _, t := range triples {
		if _, err := p.Broker.Produce(TopicTriples, t.S.Key(), []byte(t.String()), ts); err != nil {
			return err
		}
	}
	return nil
}

// BuildKnowledgeGraph drains the triples topic (the batch layer's input)
// into a spatio-temporal store with the given cell configuration and layout.
func (p *Pipeline) BuildKnowledgeGraph(cfg store.STCellConfig, layout store.Layout) (*store.Store, error) {
	recs, err := p.Broker.Drain(TopicTriples)
	if err != nil {
		return nil, err
	}
	// Group the N-Triples lines into one batch per subject-bearing record
	// ordering; Load batches per 10k lines to bound memory.
	st := store.New(cfg, layout)
	var batch []rdf.Triple
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		st.Load(batch)
		batch = batch[:0]
		return nil
	}
	for _, rec := range recs {
		ts, err := rdf.ReadNTriples(bytes.NewReader(rec.Value))
		if err != nil {
			continue
		}
		batch = append(batch, ts...)
		if len(batch) >= 10_000 {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return st, nil
}
