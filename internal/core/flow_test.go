package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"datacron/internal/checkpoint"
	"datacron/internal/checkpoint/faultinject"
	"datacron/internal/flow"
	"datacron/internal/gen"
	"datacron/internal/mobility"
	"datacron/internal/msg"
)

// flowPipeline builds a maritime pipeline with the admission-control plane
// armed on a single-partition raw topic — one partition makes shedding and
// eviction decisions a pure fold of the report sequence, so runs are
// comparable byte for byte.
func flowPipeline(t *testing.T, shards int, fc flow.Config) (*Pipeline, []mobility.Report) {
	t.Helper()
	p, err := New(
		WithDomain(mobility.Maritime),
		WithPartitions(1),
		WithShards(shards),
		WithFlow(fc),
	)
	if err != nil {
		t.Fatal(err)
	}
	sim := gen.NewVesselSim(gen.VesselSimConfig{Seed: 77, Region: region, GapProb: 0.005})
	return p, sim.Run(time.Hour)
}

// TestSentinelErrorsAreDistinct pins the errors.Is contract of the three
// overload sentinels: each wrapped error matches its own sentinel and no
// other, so callers can branch on the failure class.
func TestSentinelErrorsAreDistinct(t *testing.T) {
	wrappedFull := fmt.Errorf("%w: raw/0 at capacity", msg.ErrTopicFull)
	wrappedShed := fmt.Errorf("%w: mover v1", flow.ErrShed)
	wrappedBp := fmt.Errorf("%w: %w", ErrBackpressure, context.Canceled)
	cases := []struct {
		name   string
		err    error
		target error
		want   bool
	}{
		{"full matches full", wrappedFull, msg.ErrTopicFull, true},
		{"full is not shed", wrappedFull, flow.ErrShed, false},
		{"full is not backpressure", wrappedFull, ErrBackpressure, false},
		{"shed matches shed", wrappedShed, flow.ErrShed, true},
		{"shed is not full", wrappedShed, msg.ErrTopicFull, false},
		{"backpressure matches backpressure", wrappedBp, ErrBackpressure, true},
		{"backpressure carries the context cause", wrappedBp, context.Canceled, true},
		{"backpressure is not full", wrappedBp, msg.ErrTopicFull, false},
	}
	for _, c := range cases {
		if got := errors.Is(c.err, c.target); got != c.want {
			t.Errorf("%s: errors.Is = %t, want %t", c.name, got, c.want)
		}
	}
}

// TestIngestBackpressureHonorsContext: with the Block policy and no consumer
// draining, Ingest must stop at the caller's deadline and surface the stall
// as ErrBackpressure wrapping the context error.
func TestIngestBackpressureHonorsContext(t *testing.T) {
	p, reports := flowPipeline(t, 1, flow.Config{
		QueueCap: 8, Policy: msg.Block,
		ShedLow: 1 << 20, ShedHigh: 1 << 20, // shedder out of the way
	})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := p.Ingest(ctx, reports)
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("Ingest past capacity: err = %v, want ErrBackpressure", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Ingest must carry the context cause: %v", err)
	}
}

// TestIngestDropNewestCountsRejects: rejected records are bookkeeping, not
// failures — Ingest completes and reports them in the flow stats.
func TestIngestDropNewestCountsRejects(t *testing.T) {
	p, reports := flowPipeline(t, 1, flow.Config{
		QueueCap: 64, Policy: msg.DropNewest,
		ShedLow: 1 << 20, ShedHigh: 1 << 20,
	})
	if err := p.Ingest(context.Background(), reports); err != nil {
		t.Fatalf("Ingest with drop-newest must not fail: %v", err)
	}
	st := p.Stats()
	if st.Flow.RejectedFull == 0 {
		t.Fatal("no rejected records: the test applied no pressure")
	}
	raw, _ := p.Broker.Stats().Topic(TopicRaw)
	if raw.Backlog > 64 {
		t.Fatalf("backlog %d exceeds the configured capacity", raw.Backlog)
	}
}

// TestShardsByteIdenticalUnderPressure extends the shard determinism
// contract to an overloaded ingest: with a bounded single-partition topic,
// priority shedding and drop-oldest both active, a 4-shard run must still
// publish byte-identical outputs to the serial run — admission decisions are
// made before partitioning and must not depend on the shard count.
func TestShardsByteIdenticalUnderPressure(t *testing.T) {
	fc := flow.Config{QueueCap: 256, Policy: msg.DropOldestUncommitted}
	base, reports := flowPipeline(t, 1, fc)
	if err := base.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	if shed := base.Stats().Flow.Shedder.Shed(); shed == 0 {
		t.Fatal("nothing shed: the test applied no pressure")
	}
	baseSum, err := base.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	p, reports2 := flowPipeline(t, 4, fc)
	if len(reports2) != len(reports) {
		t.Fatalf("simulation not deterministic: %d vs %d reports", len(reports2), len(reports))
	}
	if err := p.Ingest(context.Background(), reports2); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Stats().Flow.Shedder, base.Stats().Flow.Shedder; got != want {
		t.Fatalf("shed decisions depend on shard count: %+v vs %+v", got, want)
	}
	sum, err := p.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sum) != fmt.Sprint(baseSum) {
		t.Errorf("summaries differ:\nserial  %v\nsharded %v", baseSum, sum)
	}
	requireIdenticalTopics(t, base.Broker, p.Broker)
}

// TestOverloadCrashRecoveryByteIdentical is the acceptance test for the
// bounded plane's recovery story: an overload-thinned raw log (records
// evicted by DropOldestUncommitted during ingest) driven through repeated
// injected crashes and checkpoint replays must publish byte-identical
// outputs to a clean run over the same thinned log.
func TestOverloadCrashRecoveryByteIdentical(t *testing.T) {
	// Watermarks above any reachable depth disable the shedder, forcing the
	// pressure into the broker so evictions (not just sheds) are replayed.
	// The capacity keeps the thinned log several poll batches long:
	// checkpoints are captured only between batches, so a log shorter than
	// one batch could never checkpoint and the restart loop would livelock.
	fc := flow.Config{
		QueueCap: 2048, Policy: msg.DropOldestUncommitted,
		ShedLow: 1 << 20, ShedHigh: 1 << 20,
	}
	base, reports := flowPipeline(t, 1, fc)
	if err := base.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	rawBase, _ := base.Broker.Stats().Topic(TopicRaw)
	if rawBase.Evicted == 0 {
		t.Fatal("nothing evicted: the test applied no overload")
	}
	baseSum, err := base.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	faulty, reports2 := flowPipeline(t, 1, fc)
	if err := faulty.Ingest(context.Background(), reports2); err != nil {
		t.Fatal(err)
	}
	rawFaulty, _ := faulty.Broker.Stats().Topic(TopicRaw)
	if rawFaulty.Evicted != rawBase.Evicted {
		t.Fatalf("ingest not deterministic: %d vs %d evictions", rawFaulty.Evicted, rawBase.Evicted)
	}
	cpr, err := checkpoint.NewCheckpointer(checkpoint.NewMemStore(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// The thinned log retains only ~QueueCap records, so the kill cadence is
	// tighter than the unbounded recovery tests — but KillMin stays above
	// the checkpoint interval plus one poll batch, per the injector's
	// livelock warning.
	inj := faultinject.New(faultinject.Config{Seed: 42, KillMin: 600, KillMax: 1000})
	rc := &RecoveryConfig{Checkpointer: cpr, EveryRecords: 256, Injector: inj}

	sum, restarts := runUntilDone(t, faulty, rc, 100)
	if inj.Kills() < 2 {
		t.Fatalf("only %d crashes injected; the test proved nothing", inj.Kills())
	}
	t.Logf("replayed an overload-thinned log through %d crashes (%d restarts, %d checkpoints, %d evictions)",
		inj.Kills(), restarts, cpr.Captures(), rawFaulty.Evicted)

	if fmt.Sprint(sum) != fmt.Sprint(baseSum) {
		t.Errorf("summaries differ:\nbase    %v\nrecover %v", baseSum, sum)
	}
	requireIdenticalTopics(t, base.Broker, faulty.Broker)
}
