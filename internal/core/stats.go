package core

import (
	"fmt"
	"io"

	"datacron/internal/linkdisc"
	"datacron/internal/msg"
	"datacron/internal/obs"
	"datacron/internal/obs/export"
	"datacron/internal/synopses"
)

// PipelineStats is one composed, race-free snapshot of the pipeline: the
// live metric registry, broker topic depths, and the component stats of
// the most recent completed real-time run. Metrics are live at the instant
// of the call; component stats (Synopses, Links, Consumer, Summary) are
// value copies captured when the last run returned.
type PipelineStats struct {
	Metrics  obs.Snapshot
	Broker   msg.BrokerStats
	Synopses synopses.Stats
	Links    linkdisc.Stats
	Consumer msg.ConsumerStats
	Summary  Summary
}

// Stats snapshots the pipeline. Safe to call concurrently with a run; the
// metric registry and broker are read atomically, the component stats are
// from the last completed run.
func (p *Pipeline) Stats() PipelineStats {
	s := PipelineStats{
		Metrics: p.obs.Snapshot(),
		Broker:  p.Broker.Stats(),
	}
	p.mu.Lock()
	s.Synopses = p.lastSyn
	s.Links = p.lastLink
	s.Consumer = p.lastCons
	s.Summary = p.lastSum
	p.mu.Unlock()
	return s
}

// StatzPayload is the admin server's /statz document: PipelineStats with
// the metric snapshot replaced by its sanitised JSON form, so the document
// always encodes (encoding/json rejects non-finite floats).
type StatzPayload struct {
	Metrics  export.SnapshotJSON `json:"metrics"`
	Broker   msg.BrokerStats     `json:"broker"`
	Synopses synopses.Stats      `json:"synopses"`
	Links    linkdisc.Stats      `json:"links"`
	Consumer msg.ConsumerStats   `json:"consumer"`
	Summary  Summary             `json:"summary"`
}

// Statz converts the stats to the /statz wire form.
func (s PipelineStats) Statz() StatzPayload {
	return StatzPayload{
		Metrics:  export.JSONSnapshot(s.Metrics),
		Broker:   s.Broker,
		Synopses: s.Synopses,
		Links:    s.Links,
		Consumer: s.Consumer,
		Summary:  s.Summary,
	}
}

// Obs exposes the pipeline's metric registry (nil when instrumentation is
// disabled) so callers can share it across pipelines or add their own
// metrics.
func (p *Pipeline) Obs() *obs.Registry { return p.obs }

// Tracer exposes the pipeline's span tracer (nil when instrumentation is
// disabled).
func (p *Pipeline) Tracer() *obs.Tracer { return p.tracer }

// WriteText renders the snapshot as a plain-text dump: the run summary,
// per-topic broker depths, then every registry metric with rates — the
// output behind cmd/datacron's -metrics flag.
func (s PipelineStats) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# run summary\n%s\n", s.Summary); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# topics\n"); err != nil {
		return err
	}
	for _, t := range s.Broker.Topics {
		if _, err := fmt.Fprintf(w, "topic   %-42s parts=%d records=%d bytes=%d\n",
			t.Name, t.Partitions, t.Records, t.Bytes); err != nil {
			return err
		}
	}
	return s.Metrics.WriteText(w)
}
