package core

import (
	"fmt"
	"io"

	"datacron/internal/flow"
	"datacron/internal/linkdisc"
	"datacron/internal/msg"
	"datacron/internal/obs"
	"datacron/internal/obs/export"
	"datacron/internal/obs/slo"
	"datacron/internal/shard"
	"datacron/internal/synopses"
)

// FlowStats summarises the backpressure plane's last Ingest: the shedder's
// admission counters plus produces rejected by a drop-newest topic limit.
// The zero value means the plane was off or nothing was ever ingested.
type FlowStats struct {
	Shedder      flow.Stats `json:"shedder"`
	RejectedFull int64      `json:"rejected_full"` // produces rejected with msg.ErrTopicFull
}

// PipelineStats is one composed, race-free snapshot of the pipeline: the
// live metric registry, broker topic depths, and the component stats of
// the most recent completed real-time run. Metrics are live at the instant
// of the call; component stats (Synopses, Links, Consumer, Summary) are
// value copies captured when the last run returned.
type PipelineStats struct {
	Metrics  obs.Snapshot
	Broker   msg.BrokerStats
	Synopses synopses.Stats
	Links    linkdisc.Stats
	Consumer msg.ConsumerStats
	Summary  Summary
	// Flow is the backpressure plane's view of the most recent Ingest
	// (zero when WithFlow is not armed).
	Flow FlowStats
	// Shards holds one row per shard worker of a sharded run (nil for
	// serial runs): live progress, queue depth and per-shard synopses
	// counters.
	Shards []ShardStats
	// SLO is each freshness objective's standing (nil without WithSLO).
	SLO []slo.Status
}

// ShardStats is one worker's live view in a sharded run: plane progress
// plus the worker's own synopses counters, read from its shard-local
// registry.
type ShardStats struct {
	Shard    int   `json:"shard"`
	Records  int64 `json:"records"`  // records processed on the worker goroutine
	Queue    int   `json:"queue"`    // inputs waiting in the shard's queue
	Critical int64 `json:"critical"` // critical points emitted by this shard
	Dropped  int64 `json:"dropped"`  // records dropped by this shard's noise filters
}

// Stats snapshots the pipeline. Safe to call concurrently with a run; the
// metric registry and broker are read atomically, the component stats are
// from the last completed run.
func (p *Pipeline) Stats() PipelineStats {
	s := PipelineStats{
		Metrics: p.MergedSnapshot(),
		Broker:  p.Broker.Stats(),
		SLO:     p.slos.Status(),
	}
	p.mu.Lock()
	s.Synopses = p.lastSyn
	s.Links = p.lastLink
	s.Consumer = p.lastCons
	s.Summary = p.lastSum
	s.Flow = p.lastFlow
	regs, stats := p.shardRegs, p.shardStats
	p.mu.Unlock()
	if stats != nil {
		for _, row := range stats() {
			sr := ShardStats{Shard: row.Shard, Records: row.Processed, Queue: row.Queue}
			if row.Shard < len(regs) {
				snap := regs[row.Shard].Snapshot()
				sr.Critical = snap.Counter("synopses.critical")
				sr.Dropped = snap.Counter("synopses.dropped")
			}
			s.Shards = append(s.Shards, sr)
		}
	}
	return s
}

// setShardView publishes a run's shard registries and plane progress for
// Stats/MergedSnapshot readers; a serial run clears both.
func (p *Pipeline) setShardView(regs []*obs.Registry, stats func() []shard.Stats) {
	p.mu.Lock()
	p.shardRegs = regs
	p.shardStats = stats
	p.mu.Unlock()
}

// MergedSnapshot is the pipeline-wide metric view: the main registry
// merged with every shard worker's registry, twice over — once unprefixed
// (the aggregate: per-shard counters sum into the familiar names) and once
// under a "shard.<i>." prefix (the per-shard label). Serial runs have no
// shard registries, so it degrades to the main registry's snapshot. The
// admin /metrics endpoint and Stats().Metrics read through this.
func (p *Pipeline) MergedSnapshot() obs.Snapshot {
	p.mu.Lock()
	regs := p.shardRegs
	p.mu.Unlock()
	out := p.obs.Snapshot()
	for i, reg := range regs {
		snap := reg.Snapshot()
		out = out.Merge(snap)
		out = out.Merge(snap.Prefixed(fmt.Sprintf("shard.%d.", i)))
	}
	return out
}

// StatzPayload is the admin server's /statz document: PipelineStats with
// the metric snapshot replaced by its sanitised JSON form, so the document
// always encodes (encoding/json rejects non-finite floats).
type StatzPayload struct {
	Metrics  export.SnapshotJSON `json:"metrics"`
	Broker   msg.BrokerStats     `json:"broker"`
	Synopses synopses.Stats      `json:"synopses"`
	Links    linkdisc.Stats      `json:"links"`
	Consumer msg.ConsumerStats   `json:"consumer"`
	Summary  Summary             `json:"summary"`
	Flow     FlowStats           `json:"flow"`
	Shards   []ShardStats        `json:"shards,omitempty"`
	SLO      []slo.Status        `json:"slo,omitempty"`
}

// Statz converts the stats to the /statz wire form.
func (s PipelineStats) Statz() StatzPayload {
	return StatzPayload{
		Metrics:  export.JSONSnapshot(s.Metrics),
		Broker:   s.Broker,
		Synopses: s.Synopses,
		Links:    s.Links,
		Consumer: s.Consumer,
		Summary:  s.Summary,
		Flow:     s.Flow,
		Shards:   s.Shards,
		SLO:      s.SLO,
	}
}

// Obs exposes the pipeline's metric registry (nil when instrumentation is
// disabled) so callers can share it across pipelines or add their own
// metrics.
func (p *Pipeline) Obs() *obs.Registry { return p.obs }

// Tracer exposes the pipeline's span tracer (nil when instrumentation is
// disabled).
func (p *Pipeline) Tracer() *obs.Tracer { return p.tracer }

// WriteText renders the snapshot as a plain-text dump: the run summary,
// per-topic broker depths, then every registry metric with rates — the
// output behind cmd/datacron's -metrics flag.
func (s PipelineStats) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# run summary\n%s\n", s.Summary); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# topics\n"); err != nil {
		return err
	}
	for _, t := range s.Broker.Topics {
		if _, err := fmt.Fprintf(w, "topic   %-42s parts=%d records=%d bytes=%d backlog=%d evicted=%d rejected=%d\n",
			t.Name, t.Partitions, t.Records, t.Bytes, t.Backlog, t.Evicted, t.Rejected); err != nil {
			return err
		}
	}
	if st := s.Flow; st.Shedder.Admitted > 0 || st.Shedder.Shed() > 0 || st.RejectedFull > 0 {
		if _, err := fmt.Fprintf(w, "# flow\nflow    admitted=%d shed_bulk=%d shed_standard=%d rejected_full=%d level=%d\n",
			st.Shedder.Admitted, st.Shedder.ShedBulk, st.Shedder.ShedStandard, st.RejectedFull, st.Shedder.Level); err != nil {
			return err
		}
	}
	if len(s.Shards) > 0 {
		if _, err := fmt.Fprintf(w, "# shards\n"); err != nil {
			return err
		}
		for _, sh := range s.Shards {
			if _, err := fmt.Fprintf(w, "shard   %-42d records=%d critical=%d dropped=%d queue=%d\n",
				sh.Shard, sh.Records, sh.Critical, sh.Dropped, sh.Queue); err != nil {
				return err
			}
		}
	}
	return s.Metrics.WriteText(w)
}
