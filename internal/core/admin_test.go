package core

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"datacron/internal/gen"
	"datacron/internal/mobility"
	"datacron/internal/obs"
)

// adminGet fetches a path from the pipeline's admin server.
func adminGet(t *testing.T, p *Pipeline, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + p.Admin().Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminServesPipeline runs a small scenario through a pipeline built
// with WithAdmin and checks the whole operational plane: valid Prometheus
// exposition of real pipeline metrics, the /statz document, trace spans
// from the run, and a clean Shutdown.
func TestAdminServesPipeline(t *testing.T) {
	p, err := New(
		WithDomain(mobility.Maritime),
		WithAdmin("127.0.0.1:0"),
		WithWatchdogInterval(time.Hour), // ticked manually below
	)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(context.Background())
	if p.Admin() == nil || p.Admin().Addr() == "" || p.Watchdog() == nil {
		t.Fatal("WithAdmin must start the server and watchdog")
	}

	sim := gen.NewVesselSim(gen.VesselSimConfig{
		Seed:   7,
		Region: gen.AegeanRegion,
		Counts: map[gen.VesselClass]int{gen.Cargo: 2},
	})
	if err := p.Ingest(context.Background(), sim.Run(30*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunRealTime(context.Background()); err != nil {
		t.Fatal(err)
	}

	code, body := adminGet(t, p, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE core_records_total counter",
		"# TYPE core_watermark_unixsec gauge",
		`msg_produced_total{topic="surveillance.raw"}`,
		"# TYPE trace_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = adminGet(t, p, "/statz")
	if code != http.StatusOK {
		t.Fatalf("/statz = %d", code)
	}
	var statz StatzPayload
	if err := json.Unmarshal([]byte(body), &statz); err != nil {
		t.Fatalf("/statz does not decode: %v", err)
	}
	if statz.Summary.RawIn == 0 || len(statz.Metrics.Counters) == 0 {
		t.Fatalf("/statz payload empty: %+v", statz.Summary)
	}

	code, body = adminGet(t, p, "/traces")
	if code != http.StatusOK || !strings.Contains(body, `"name": "poll"`) {
		t.Fatalf("/traces = %d, body:\n%s", code, body)
	}

	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + p.Admin().Addr() + "/metrics"); err == nil {
		t.Fatal("admin server still serving after Shutdown")
	}
}

// TestReadyzFlipsWithinOneTick injects a stalled-watermark fault into the
// registry of an admin-enabled pipeline and checks /readyz flips to 503
// after exactly one manual watchdog tick — the acceptance criterion for the
// health model.
func TestReadyzFlipsWithinOneTick(t *testing.T) {
	clk := obs.NewManualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	p, err := New(
		WithClock(clk),
		WithAdmin("127.0.0.1:0"),
		WithWatchdogInterval(time.Hour), // ticked manually
	)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Shutdown(context.Background())
	reg, w := p.Obs(), p.Watchdog()

	reg.Counter("core.records").Add(10)
	reg.Gauge("core.watermark.unixsec").Set(float64(clk.Now().Unix()))
	w.Tick() // baseline
	if code, _ := adminGet(t, p, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz baseline = %d", code)
	}

	// Fault: records advance, watermark frozen.
	clk.Advance(time.Second)
	reg.Counter("core.records").Add(10)
	w.Tick() // ONE tick after the fault
	code, body := adminGet(t, p, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after one tick = %d, want 503; body:\n%s", code, body)
	}
	if !strings.Contains(body, "watermark") {
		t.Fatalf("/readyz body must name the failing component:\n%s", body)
	}
	if code, _ := adminGet(t, p, "/healthz"); code != http.StatusServiceUnavailable {
		t.Fatal("/healthz must also fail on an unhealthy component")
	}

	// Growing consumer lag is the second injected fault class.
	clk.Advance(time.Second)
	reg.Gauge("core.watermark.unixsec").Set(float64(clk.Now().Unix()))
	reg.Gauge("msg.lag.realtime/surveillance.raw").Set(1)
	w.Tick()
	clk.Advance(time.Second)
	reg.Gauge("core.watermark.unixsec").Set(float64(clk.Now().Unix()))
	reg.Gauge("msg.lag.realtime/surveillance.raw").Set(100)
	w.Tick()
	if code, body := adminGet(t, p, "/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "lag") {
		t.Fatalf("/readyz with growing lag = %d, body:\n%s", code, body)
	}
}

// TestAdminRequiresMetrics checks the WithAdmin/WithObs(nil) conflict is
// rejected at construction.
func TestAdminRequiresMetrics(t *testing.T) {
	if _, err := New(WithObs(nil), WithAdmin("127.0.0.1:0")); err == nil {
		t.Fatal("WithAdmin with metrics disabled must fail")
	}
}
