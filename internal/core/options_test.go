package core

import (
	"context"
	"testing"
	"time"

	"datacron/internal/geo"
	"datacron/internal/mobility"
	"datacron/internal/obs"
)

func TestNewDefaults(t *testing.T) {
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if p.Obs() == nil {
		t.Fatal("New must attach a metrics registry by default")
	}
	if p.Tracer() == nil {
		t.Fatal("New must attach a tracer by default")
	}
	n, err := p.Broker.Partitions(TopicRaw)
	if err != nil || n != 4 {
		t.Fatalf("default partitions = %d (%v), want 4", n, err)
	}
}

func TestOptionsApply(t *testing.T) {
	clk := obs.NewManualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	p, err := New(
		WithDomain(mobility.Aviation),
		WithPartitions(2),
		WithFLP(4, 5*time.Second),
		WithClock(clk),
	)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := p.Broker.Partitions(TopicRaw); n != 2 {
		t.Fatalf("partitions = %d, want 2", n)
	}
	if p.cfg.Domain != mobility.Aviation || p.cfg.PredictSteps != 4 || p.cfg.SampleInterval != 5*time.Second {
		t.Fatalf("options not applied: %+v", p.cfg)
	}
	// The default registry must run on the injected clock.
	s := p.Obs().Snapshot()
	if !s.At.Equal(clk.Now()) {
		t.Fatalf("registry clock not injected: snapshot at %v, clock %v", s.At, clk.Now())
	}
}

func TestWithObsNilDisablesInstrumentation(t *testing.T) {
	p, err := New(WithObs(nil))
	if err != nil {
		t.Fatal(err)
	}
	if p.Obs() != nil || p.Tracer() != nil {
		t.Fatal("WithObs(nil) must disable the registry and tracer")
	}
	if err := p.Ingest(context.Background(), smallFleet(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunRealTime(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if len(st.Metrics.Counters) != 0 {
		t.Fatalf("disabled instrumentation still produced metrics: %+v", st.Metrics.Counters)
	}
	if st.Summary.RawIn == 0 {
		t.Fatal("component stats must still be captured without a registry")
	}
}

func TestSharedRegistryAcrossPipelines(t *testing.T) {
	reg := obs.NewRegistry(nil)
	a, err := New(WithObs(reg), WithPartitions(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(WithObs(reg), WithPartitions(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Obs() != reg || b.Obs() != reg {
		t.Fatal("WithObs must attach the caller's registry")
	}
}

func TestWithConfigBridge(t *testing.T) {
	p, err := New(WithConfig(Config{Domain: mobility.Maritime}))
	if err != nil {
		t.Fatal(err)
	}
	if p.Obs() == nil {
		t.Fatal("WithConfig must behave like the option path, including default instrumentation")
	}
}

// smallFleet produces a short deterministic report set for cheap run tests.
func smallFleet(t *testing.T) []mobility.Report {
	t.Helper()
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	c := region.Center()
	var reports []mobility.Report
	for i := 0; i < 240; i++ {
		// ~0.0012 deg/30s eastward keeps the track well under the synopses
		// noise-filter speed ceiling while still moving every sample.
		reports = append(reports, mobility.Report{
			ID:      "v1",
			Time:    base.Add(time.Duration(i) * 30 * time.Second),
			Pos:     geo.Point{Lon: c.Lon + float64(i)*0.0012, Lat: c.Lat},
			SpeedKn: 8,
			Heading: 90,
		})
	}
	return reports
}
