package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"datacron/internal/checkpoint"
	"datacron/internal/checkpoint/faultinject"
	"datacron/internal/msg"
)

// topicContents reads every record of every partition of a topic. The topic
// must be closed (or fully produced) so the fetches cannot block.
func topicContents(t *testing.T, b *msg.Broker, topic string) map[int][]msg.Record {
	t.Helper()
	parts, err := b.Partitions(topic)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int][]msg.Record, parts)
	for p := 0; p < parts; p++ {
		end, err := b.EndOffset(topic, p)
		if err != nil {
			t.Fatal(err)
		}
		if end == 0 {
			continue
		}
		recs, err := b.Fetch(context.Background(), topic, p, 0, int(end))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(recs)) != end {
			t.Fatalf("%s/%d: fetched %d of %d records", topic, p, len(recs), end)
		}
		out[p] = recs
	}
	return out
}

// requireIdenticalTopics fails unless both brokers hold byte-identical
// contents — offsets, keys, values and event times — on every output topic.
func requireIdenticalTopics(t *testing.T, want, got *msg.Broker) {
	t.Helper()
	for _, topic := range outputTopics {
		a, b := topicContents(t, want, topic), topicContents(t, got, topic)
		if len(a) != len(b) {
			t.Errorf("%s: partition sets differ: %d vs %d", topic, len(a), len(b))
			continue
		}
		for p, recsA := range a {
			recsB := b[p]
			if len(recsA) != len(recsB) {
				t.Errorf("%s/%d: %d records vs %d", topic, p, len(recsA), len(recsB))
				continue
			}
			for i := range recsA {
				ra, rb := recsA[i], recsB[i]
				if ra.Offset != rb.Offset || ra.Key != rb.Key ||
					string(ra.Value) != string(rb.Value) || !ra.Time.Equal(rb.Time) {
					t.Errorf("%s/%d offset %d differs:\nbase    %d %q %q %v\nrecover %d %q %q %v",
						topic, p, i, ra.Offset, ra.Key, ra.Value, ra.Time,
						rb.Offset, rb.Key, rb.Value, rb.Time)
					break
				}
			}
		}
	}
}

// runUntilDone drives RunWithRecovery through injected crashes until a run
// completes, returning the final summary and the number of restarts.
func runUntilDone(t *testing.T, p *Pipeline, rc *RecoveryConfig, maxRestarts int) (Summary, int) {
	t.Helper()
	restarts := 0
	for {
		sum, err := p.RunWithRecovery(context.Background(), rc)
		if err == nil {
			return sum, restarts
		}
		if !errors.Is(err, faultinject.ErrInjectedCrash) {
			t.Fatalf("run failed with a non-injected error: %v", err)
		}
		restarts++
		if restarts > maxRestarts {
			t.Fatalf("pipeline did not finish within %d restarts", maxRestarts)
		}
	}
}

// TestRecoveryByteIdenticalOutput is the headline fault-tolerance test: a
// maritime pipeline killed repeatedly mid-stream and recovered from
// checkpoints must publish byte-identical output topics and an identical
// summary to an uninterrupted run of the same input.
func TestRecoveryByteIdenticalOutput(t *testing.T) {
	base, reports := maritimePipeline(t, true)
	if err := base.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	baseSum, err := base.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	faulty, reports2 := maritimePipeline(t, true)
	if len(reports2) != len(reports) {
		t.Fatalf("simulation not deterministic: %d vs %d reports", len(reports2), len(reports))
	}
	if err := faulty.Ingest(context.Background(), reports2); err != nil {
		t.Fatal(err)
	}
	cpr, err := checkpoint.NewCheckpointer(checkpoint.NewMemStore(), 3)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{
		Seed:     42,
		KillMin:  900,
		KillMax:  1500,
		DropProb: 0.01,
	})
	rc := &RecoveryConfig{Checkpointer: cpr, EveryRecords: 300, Injector: inj}

	sum, restarts := runUntilDone(t, faulty, rc, 100)
	if inj.Kills() < 2 {
		t.Fatalf("only %d crashes injected; the test proved nothing", inj.Kills())
	}
	t.Logf("recovered from %d crashes (%d restarts, %d checkpoints, %d dropped batches)",
		inj.Kills(), restarts, cpr.Captures(), inj.Drops())

	if fmt.Sprint(sum) != fmt.Sprint(baseSum) {
		t.Errorf("summaries differ:\nbase    %v\nrecover %v", baseSum, sum)
	}
	requireIdenticalTopics(t, base.Broker, faulty.Broker)
}

// TestRecoveryCorruptedCheckpointFallsBack corrupts the newest on-disk
// checkpoint after a crash: recovery must fall back to the previous
// generation and still reproduce byte-identical output.
func TestRecoveryCorruptedCheckpointFallsBack(t *testing.T) {
	base, reports := maritimePipeline(t, false)
	if err := base.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	baseSum, err := base.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	faulty, reports2 := maritimePipeline(t, false)
	if err := faulty.Ingest(context.Background(), reports2); err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cpr, err := checkpoint.NewCheckpointer(store, 3)
	if err != nil {
		t.Fatal(err)
	}
	// KillMin 1200 guarantees at least two checkpoints (every >=300 records at
	// <=256-record batch boundaries: 512 and 1024) before the first crash, so
	// the corrupted newest generation always has a valid predecessor.
	inj := faultinject.New(faultinject.Config{Seed: 7, KillMin: 1200, KillMax: 1600})
	rc := &RecoveryConfig{Checkpointer: cpr, EveryRecords: 300, Injector: inj}

	_, err = faulty.RunWithRecovery(context.Background(), rc)
	if !errors.Is(err, faultinject.ErrInjectedCrash) {
		t.Fatalf("first run: got %v, want an injected crash", err)
	}

	before, err := cpr.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Corrupt(store); err != nil {
		t.Fatal(err)
	}
	after, err := cpr.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation != before.Generation-1 {
		t.Fatalf("after corruption Latest() = gen %d, want fallback to %d",
			after.Generation, before.Generation-1)
	}

	// Resume (without further faults) from the surviving older generation.
	sum, restarts := runUntilDone(t, faulty, &RecoveryConfig{Checkpointer: cpr, EveryRecords: 300}, 1)
	if restarts != 0 {
		t.Fatalf("clean resume crashed %d times", restarts)
	}
	if fmt.Sprint(sum) != fmt.Sprint(baseSum) {
		t.Errorf("summaries differ:\nbase    %v\nrecover %v", baseSum, sum)
	}
	requireIdenticalTopics(t, base.Broker, faulty.Broker)
}
