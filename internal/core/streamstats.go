package core

import (
	"sort"
	"time"

	"datacron/internal/mobility"
	"datacron/internal/stream"
)

// WindowStat is one per-mover, per-window statistics row: the in-situ
// "statistics (min/max/avg) computed over properties such as speed ... in
// an online fashion" of Section 3, windowed for the dashboard's time-series
// displays.
type WindowStat struct {
	MoverID     string
	WindowStart time.Time
	WindowEnd   time.Time
	Count       int
	MeanSpeedKn float64
	MinSpeedKn  float64
	MaxSpeedKn  float64
}

// speedAgg folds speed samples inside one window.
type speedAgg struct {
	n        int
	sum      float64
	min, max float64
}

// WindowedSpeedStats runs the raw report log through the stream engine:
// events are keyed by mover and folded into event-time tumbling windows
// with the given lateness allowance (out-of-order feeds are the norm for
// satellite AIS). The result is ordered by window end, then mover.
func WindowedSpeedStats(reports []mobility.Report, window, allowedLateness time.Duration) []WindowStat {
	events := make([]stream.Event[mobility.Report], 0, len(reports))
	for _, r := range reports {
		if !r.Valid() {
			continue // in-situ cleaning
		}
		events = append(events, stream.E(r.ID, r.Time, r))
	}
	// The batch entry point accepts reports in any order; live streams are
	// approximately ordered and rely on the lateness allowance instead.
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	agg := stream.TumblingWindow(stream.FromSlice(events), window, allowedLateness,
		func(stream.Window) speedAgg {
			return speedAgg{min: 1e18, max: -1e18}
		},
		func(a speedAgg, e stream.Event[mobility.Report]) speedAgg {
			v := e.Value.SpeedKn
			a.n++
			a.sum += v
			if v < a.min {
				a.min = v
			}
			if v > a.max {
				a.max = v
			}
			return a
		},
	)
	var out []WindowStat
	for e := range agg {
		a := e.Value.Value
		if a.n == 0 {
			continue
		}
		out = append(out, WindowStat{
			MoverID:     e.Key,
			WindowStart: e.Value.Window.Start,
			WindowEnd:   e.Value.Window.End,
			Count:       a.n,
			MeanSpeedKn: a.sum / float64(a.n),
			MinSpeedKn:  a.min,
			MaxSpeedKn:  a.max,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].WindowEnd.Equal(out[j].WindowEnd) {
			return out[i].WindowEnd.Before(out[j].WindowEnd)
		}
		return out[i].MoverID < out[j].MoverID
	})
	return out
}

// FleetRates aggregates a report log into fleet-wide per-window message
// counts — the Figure 10 time-series display feed — using the stream
// engine's windows rather than batch binning, so the same code path serves
// live streams.
func FleetRates(reports []mobility.Report, window time.Duration) map[time.Time]int {
	events := make([]stream.Event[int], 0, len(reports))
	for _, r := range reports {
		events = append(events, stream.E("fleet", r.Time, 1))
	}
	counted := stream.TumblingWindow(stream.FromSlice(events), window, 0,
		func(stream.Window) int { return 0 },
		func(acc int, _ stream.Event[int]) int { return acc + 1 },
	)
	out := make(map[time.Time]int)
	for e := range counted {
		out[e.Value.Window.Start] = e.Value.Value
	}
	return out
}
