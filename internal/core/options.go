package core

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"datacron/internal/admin"
	"datacron/internal/flow"
	"datacron/internal/gen"
	"datacron/internal/health"
	"datacron/internal/linkdisc"
	"datacron/internal/lowlevel"
	"datacron/internal/mobility"
	"datacron/internal/msg"
	"datacron/internal/obs"
	"datacron/internal/obs/slo"
	"datacron/internal/synopses"
)

// Option configures a Pipeline built with New. Options replace the old
// pattern of filling a Config struct and relying on zero-value defaulting:
// each option states one intent, unset aspects keep their documented
// defaults, and new knobs can be added without breaking callers.
type Option func(*options)

// options is the accumulated build state. cfg reuses the legacy Config
// layout internally so both construction paths share one defaulting rule.
type options struct {
	cfg       Config
	reg       *obs.Registry
	regSet    bool
	clock     obs.Clock
	logger    *slog.Logger
	adminAddr string
	adminSet  bool
	health    health.Config
	wdTick    time.Duration
	flow      flow.Config
	sample    int
	sampleSet bool
	slos      []slo.Objective
}

// WithConfig applies a legacy Config wholesale. Later options override the
// fields they touch. This is the bridge for callers still holding a filled
// Config from the pre-options construction path.
func WithConfig(cfg Config) Option {
	return func(o *options) { o.cfg = cfg }
}

// WithDomain selects the mobility domain (maritime or aviation); the
// domain picks the default synopses thresholds.
func WithDomain(d mobility.Domain) Option {
	return func(o *options) { o.cfg.Domain = d }
}

// WithSynopses overrides the synopses generator thresholds (default: the
// domain's tuned configuration).
func WithSynopses(cfg synopses.Config) Option {
	return func(o *options) { o.cfg.Synopses = cfg }
}

// WithLink enables spatio-temporal link discovery against the given static
// entities. Without statics the link-discovery stage is skipped entirely.
func WithLink(cfg linkdisc.Config, statics []linkdisc.StaticEntity) Option {
	return func(o *options) {
		o.cfg.Link = cfg
		o.cfg.Statics = statics
	}
}

// WithRegions sets the monitored zones for low-level area events.
func WithRegions(regions ...lowlevel.Region) Option {
	return func(o *options) { o.cfg.Regions = regions }
}

// WithPartitions sets the broker partition count (default 4).
func WithPartitions(n int) Option {
	return func(o *options) { o.cfg.Partitions = n }
}

// WithShards runs the real-time loop's per-trajectory stages (synopses,
// area monitoring, future-location prediction) on n parallel shard workers
// (default 1 = serial), routed by hash of the mover ID. Output is
// byte-identical for any shard count: worker results are merged back in
// the deterministic ingest order, and checkpoints are coordinated through
// an epoch barrier. With WithAdmin, each shard gets its own health verdict
// and /statz row. Pick n around the machine's core count, capped by the
// fleet size — shards beyond the number of distinct movers sit idle.
func WithShards(n int) Option {
	return func(o *options) { o.cfg.Shards = n }
}

// WithFLP tunes future-location prediction: look-ahead steps per mover
// (default 8) and the sampling interval (default 10s).
func WithFLP(steps int, sample time.Duration) Option {
	return func(o *options) {
		o.cfg.PredictSteps = steps
		o.cfg.SampleInterval = sample
	}
}

// WithCER enables complex event forecasting: a Wayeb pattern over the
// critical-point type alphabet, a symbol model of the given order trained
// on train, and a forecast confidence threshold theta (default 0.5).
func WithCER(pattern string, alphabet []string, order int, theta float64, train []string) Option {
	return func(o *options) {
		o.cfg.Pattern = pattern
		o.cfg.Alphabet = alphabet
		o.cfg.ModelOrder = order
		o.cfg.Theta = theta
		o.cfg.TrainSymbols = train
	}
}

// WithWeather enables weather enrichment of critical points.
func WithWeather(w *gen.WeatherField) Option {
	return func(o *options) { o.cfg.Weather = w }
}

// WithObs attaches the given metrics registry instead of the default
// fresh one. Pass nil to disable instrumentation entirely — every metric
// handle degrades to a no-op. Sharing one registry across pipelines merges
// their metrics.
func WithObs(reg *obs.Registry) Option {
	return func(o *options) {
		o.reg = reg
		o.regSet = true
	}
}

// WithClock injects the time source used by the default registry, span
// tracing and the interval checkpoint trigger (default: the wall clock).
// Deterministic tests pass an obs.ManualClock. When WithObs supplies a
// registry, that registry's clock wins.
func WithClock(clock obs.Clock) Option {
	return func(o *options) { o.clock = clock }
}

// WithLogger attaches a structured logger: the pipeline, broker and
// checkpointer log through it with per-component attrs, and the admin
// server (when enabled) reports its lifecycle on it. Nil (the default)
// logs nowhere. Build one with obs.NewLogger.
func WithLogger(l *slog.Logger) Option {
	return func(o *options) { o.logger = l }
}

// WithAdmin starts the operational HTTP server on addr (e.g. ":9090" or
// "127.0.0.1:0" for an ephemeral port) serving /metrics, /statz, /healthz,
// /readyz, /traces and /debug/pprof/, and arms a health watchdog over the
// pipeline's registry. Requires metrics (i.e. not WithObs(nil)). Shut it
// down with Pipeline.Shutdown.
func WithAdmin(addr string) Option {
	return func(o *options) {
		o.adminAddr = addr
		o.adminSet = true
	}
}

// WithHealth tunes the watchdog started by WithAdmin; without WithAdmin it
// has no effect. The zero Config uses the documented defaults (every
// verdict flips within one tick).
func WithHealth(cfg health.Config) Option {
	return func(o *options) { o.health = cfg }
}

// WithWatchdogInterval sets how often the admin watchdog ticks (default
// 5s). Tests that tick manually can set a large interval and drive
// Pipeline.Watchdog().Tick() themselves.
func WithWatchdogInterval(d time.Duration) Option {
	return func(o *options) { o.wdTick = d }
}

// WithTraceSampling sets the record-trace sampling period: one record in
// every n admitted to processing gets a full span tree (ingest through
// emit) in the tracer's flight-recorder ring. The default is 256; 0
// disables record tracing (stage spans like poll/process/checkpoint are
// unaffected). Sampling is head-based and deterministic — the decision
// depends only on the record's position in the processed sequence, so a
// crash-recovery replay samples the same records.
func WithTraceSampling(n int) Option {
	return func(o *options) {
		o.sample = n
		o.sampleSet = true
	}
}

// WithSLO arms the freshness SLO tracker over the given objectives (e.g.
// "p99 of lag.predict.seconds ≤ 5s per 1m window"). The tracker publishes
// slo.<name>.* metrics and its standing on /slo and /statz; with WithAdmin
// it also registers a health checker — a violated window degrades the
// "slo" component, and Burn consecutive violated windows escalate it to
// Overloaded, costing readiness. Requires metrics (not WithObs(nil)).
func WithSLO(objectives ...slo.Objective) Option {
	//lint:ignore boundedchan construction-time option accumulation, bounded by the caller's objective list
	return func(o *options) { o.slos = append(o.slos, objectives...) }
}

// WithFlow arms the backpressure and admission-control plane: the raw topic
// is bounded at cfg.QueueCap records of uncommitted backlog per partition
// under cfg.Policy, a priority-aware shedder drops low-value records at the
// configured watermarks, and (with WithAdmin) an overload health checker
// reports the new Overloaded state while records are being shed, rejected
// or blocked. The zero Config (QueueCap 0) leaves the plane off — the
// pipeline behaves exactly as without the option.
func WithFlow(cfg flow.Config) Option {
	return func(o *options) { o.flow = cfg }
}

// New builds a pipeline from options: broker topics, dashboard, profiler,
// optional forecaster, and — unless WithObs(nil) disables it — a metrics
// registry instrumenting every stage. With WithAdmin it also starts the
// operational HTTP server and its health watchdog.
func New(opts ...Option) (*Pipeline, error) {
	o := &options{clock: obs.WallClock{}, wdTick: 5 * time.Second}
	for _, opt := range opts {
		opt(o)
	}
	reg := o.reg
	if !o.regSet {
		reg = obs.NewRegistry(o.clock)
	}
	clock := o.clock
	if reg != nil {
		clock = reg.Clock()
	}
	p, err := newPipeline(o.cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	p.obs = reg
	p.clock = clock
	p.log = obs.Component(o.logger, "core")
	p.rootLog = o.logger
	p.Broker.SetLogger(o.logger)
	if reg != nil {
		// The ring holds 512 spans: a sampled record emits up to ~8 spans,
		// so even interleaved with the per-batch poll/process spans a few
		// dozen complete record trees stay reconstructable from /traces.
		p.tracer = obs.NewTracer(reg, 512)
		p.Broker.Instrument(reg)
		sample := 256
		if o.sampleSet {
			sample = o.sample
		}
		p.sampler = obs.NewSampler(sample)
	}
	if len(o.slos) > 0 {
		if reg == nil {
			return nil, fmt.Errorf("core: WithSLO requires metrics; do not combine with WithObs(nil)")
		}
		p.slos = slo.NewTracker(reg, o.slos...)
	}
	if o.flow.Enabled() {
		p.flowCfg = o.flow.WithDefaults(p.cfg.Partitions)
		if err := p.Broker.LimitTopic(TopicRaw, msg.TopicLimit{
			Capacity: p.flowCfg.QueueCap,
			Policy:   p.flowCfg.Policy,
		}); err != nil {
			return nil, fmt.Errorf("core: limit raw topic: %w", err)
		}
		p.shedder = flow.NewShedder(p.flowCfg.ShedLow, p.flowCfg.ShedHigh,
			p.flowCfg.CoverageWindow, reg)
	}
	if o.adminSet {
		if reg == nil {
			return nil, fmt.Errorf("core: WithAdmin requires metrics; do not combine with WithObs(nil)")
		}
		p.watchdog = health.NewWatchdog(reg, o.health)
		// Checkers read the merged view (main registry plus shard worker
		// registries) so shard-local lag families feed the SLO tracker.
		p.watchdog.SetSnapshotFunc(p.MergedSnapshot)
		if o.flow.Enabled() {
			p.watchdog.Register(health.NewOverloadChecker(1))
		}
		if p.slos != nil {
			p.watchdog.Register(slo.NewChecker(p.slos))
		}
		if p.cfg.Shards > 1 {
			// One verdict per shard worker: a stalled shard surfaces in
			// /healthz as "shard.<i>" instead of hiding inside aggregate
			// throughput.
			for i := 0; i < p.cfg.Shards; i++ {
				p.watchdog.Register(health.NewShardChecker(i, 1))
			}
		}
		p.admin = admin.New(admin.Config{
			Addr:     o.adminAddr,
			Registry: reg,
			Snapshot: p.MergedSnapshot,
			Tracer:   p.tracer,
			Watchdog: p.watchdog,
			Statz:    func() any { return p.Stats().Statz() },
			SLO:      p.slos.Status,
			Logger:   o.logger,
		})
		if err := p.admin.Start(); err != nil {
			return nil, fmt.Errorf("core: admin server: %w", err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		p.stopWatchdog = cancel
		go p.watchdog.Run(ctx, o.wdTick)
	}
	return p, nil
}
