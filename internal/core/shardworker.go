package core

import (
	"fmt"
	"strconv"
	"time"

	"datacron/internal/flp"
	"datacron/internal/geo"
	"datacron/internal/lowlevel"
	"datacron/internal/mobility"
	"datacron/internal/msg"
	"datacron/internal/obs"
	"datacron/internal/synopses"
)

// shardOps are the operator names every shard worker snapshot contains;
// checkpoint.ShardSnapshots maps them to "shard/<i>/<op>" entries. With
// shards=1 the same operators register under these bare names, keeping the
// single-shard checkpoint format identical to pre-shard pipelines.
var shardOps = []string{"synopses", "area", "flp"}

// workerIn is one record on its way to a shard worker, together with its
// trace context: root is the sampled record's span tree root (the zero
// Span for the unsampled majority — every child it spawns no-ops), submit
// is the in-flight queue-wait span the worker closes when it picks the
// record up (zero on the serial path, which has no queue).
type workerIn struct {
	rec    msg.Record
	root   obs.Span
	submit obs.Span
}

// workerOut is one record's shard-local result, applied by the coordinator
// in submit order. Every submitted record yields exactly one workerOut, so
// the merged stream is position-for-position identical to a serial run.
// root carries the record's span tree root back to the coordinator, which
// parents the serial-stage spans (cer, emit) to it and ends it.
type workerOut struct {
	ok         bool            // unmarshal succeeded
	rep        mobility.Report // decoded report
	valid      bool            // rep.Valid()
	areaEvents int64           // low-level events detected at this report
	pred       []geo.Point     // future locations, nil when not predicted
	cps        []synopses.CriticalPoint
	root       obs.Span
}

// newWorkerIn wraps one polled record for a shard worker and decides trace
// sampling. A sampled record gets a root "record" span annotated with its
// mover and partition, an already-closed "ingest" child covering the broker
// dwell (event time → coordinator pickup), and — when the record is headed
// for a plane queue — an open "submit" child the worker closes on pickup.
// The unsampled majority carries the zero Span, so every downstream stage
// span no-ops.
func (p *Pipeline) newWorkerIn(rec msg.Record, queued bool) workerIn {
	in := workerIn{rec: rec}
	if !p.sampler.Admit() {
		return in
	}
	in.root = p.tracer.StartSpan("record",
		obs.Attr{Key: "mover", Value: rec.Key},
		obs.Attr{Key: "partition", Value: strconv.Itoa(rec.Partition)})
	in.root.ChildAt("ingest", rec.Time).End()
	if queued {
		in.submit = in.root.Child("submit")
	}
	return in
}

// shardWorker is one shard's operator chain: exactly the per-trajectory
// stages of the run loop (decoding, synopses, area monitoring, future
// location prediction). All its state is keyed by mover ID, and the plane
// routes every record of a mover to the same shard, so the chain needs no
// locking. Cross-entity stages (link discovery, CER, RDF sequencing,
// broker output) stay on the coordinator.
type shardWorker struct {
	shard      int
	shardAttr  obs.Attr // "shard"=<i>, stamped on this worker's stage spans
	sg         *synopses.Generator
	areaMon    *lowlevel.AreaMonitor
	predictors map[string]flp.Predictor
	sample     time.Duration
	steps      int
	mRecords   *obs.Counter // "shard.<i>.records" in the pipeline registry
	clock      obs.Clock
	lagDecode  obs.LagStage // "lag.decode.*" in the worker's own registry

	// dec and scratch implement the zero-allocation decode path: the
	// per-worker interning decoder reuses each mover's ID/Source strings, and
	// scratch is the in-place decode target. Worker-local by construction —
	// Process runs only on the worker goroutine — so no locking, and no
	// cross-shard shared state (interned strings are immutable).
	dec     *mobility.Decoder
	scratch mobility.Report
}

func (p *Pipeline) newShardWorker(shard int, reg *obs.Registry) *shardWorker {
	sg := synopses.NewGenerator(p.cfg.Synopses)
	sg.Instrument(reg)
	return &shardWorker{
		shard:      shard,
		shardAttr:  obs.Attr{Key: "shard", Value: fmt.Sprintf("%d", shard)},
		sg:         sg,
		areaMon:    lowlevel.NewAreaMonitor(p.cfg.Regions, 64),
		predictors: map[string]flp.Predictor{},
		sample:     p.cfg.SampleInterval,
		steps:      p.cfg.PredictSteps,
		mRecords:   p.obs.Counter(fmt.Sprintf("shard.%d.records", shard)),
		clock:      reg.Clock(),
		lagDecode:  obs.NewLagStage(reg, "decode"),
		dec:        mobility.NewDecoder(),
	}
}

// Process runs the shard-local stages for one raw record.
func (w *shardWorker) Process(in workerIn) workerOut {
	in.submit.End() // queue wait, coordinator submit → worker pickup
	w.mRecords.Inc()
	decodeSpan := in.root.Child("decode", w.shardAttr)
	// In-place decode through the worker's interning decoder: binary records
	// decode with zero steady-state allocations, legacy JSON records sniffed
	// by magic byte still take the reflection path. The report is copied by
	// value into workerOut; its interned strings are immutable and safe to
	// share downstream.
	err := w.dec.Decode(in.rec.Value, &w.scratch)
	decodeSpan.End()
	if err != nil {
		// Corrupt record: dropped by the cleaning stage. The trace root
		// still travels back so the coordinator ends it.
		return workerOut{root: in.root}
	}
	r := w.scratch
	w.lagDecode.Observe(w.clock.Now(), r.Time)
	out := workerOut{ok: true, rep: r, valid: r.Valid(), root: in.root}
	if out.valid {
		out.areaEvents = int64(len(w.areaMon.Update(r)))
		flpSpan := in.root.Child("flp", w.shardAttr)
		pred, ok := w.predictors[r.ID]
		if !ok {
			pred = flp.NewRMFStar(w.sample)
			w.predictors[r.ID] = pred
		}
		pred.Observe(r)
		out.pred = pred.Predict(w.steps)
		flpSpan.End()
	}
	synSpan := in.root.Child("synopses", w.shardAttr)
	out.cps = w.sg.Process(r)
	synSpan.End()
	return out
}

// Snapshot encodes the worker's operators under the shardOps names, for
// the coordinated checkpoint barrier.
func (w *shardWorker) Snapshot() (map[string][]byte, error) {
	out := make(map[string][]byte, len(shardOps))
	for _, op := range shardOps {
		blob, err := w.op(op).Snapshot()
		if err != nil {
			return nil, shardOpErr(w.shard, "snapshot", op, err)
		}
		out[op] = blob
	}
	return out, nil
}

// Restore rehydrates the worker's operators from barrier blobs.
func (w *shardWorker) Restore(ops map[string][]byte) error {
	for _, op := range shardOps {
		blob, ok := ops[op]
		if !ok {
			return missingOpErr(w.shard, op)
		}
		if err := w.op(op).Restore(blob); err != nil {
			return shardOpErr(w.shard, "restore", op, err)
		}
	}
	return nil
}

// Cold-path error constructors for the snapshot/restore loops, kept in their
// own non-loop bodies so the hotalloc analyzer sees an allocation-free loop.
func shardOpErr(shard int, verb, op string, err error) error {
	return fmt.Errorf("shard %d: %s %s: %w", shard, verb, op, err)
}

func missingOpErr(shard int, op string) error {
	return fmt.Errorf("shard %d: restore: missing operator %q", shard, op)
}

// op maps a shardOps name to the operator's Snapshotter. The same
// snapshotters register directly on the Checkpointer when shards=1.
func (w *shardWorker) op(name string) interface {
	Snapshot() ([]byte, error)
	Restore([]byte) error
} {
	switch name {
	case "synopses":
		return w.sg
	case "area":
		return w.areaMon
	case "flp":
		return predictorsSnapshotter{preds: w.predictors, sample: w.sample}
	}
	panic("core: unknown shard operator " + name)
}

// Flush ends every open trajectory on this shard, returning the closing
// critical points in (time, ID) order — the coordinator k-way merges the
// per-shard lists with the same comparator.
func (w *shardWorker) Flush() []synopses.CriticalPoint {
	return w.sg.Flush()
}

// aggregateSynStats sums synopses stats across shard workers; with one
// worker it is exactly that worker's stats.
func aggregateSynStats(workers []*shardWorker) synopses.Stats {
	var out synopses.Stats
	for _, w := range workers {
		s := w.sg.Stats()
		out.In += s.In
		out.Dropped += s.Dropped
		out.Critical += s.Critical
	}
	return out
}

// lessCritical is the flush merge comparator, matching the (time, ID)
// order synopses.Generator.Flush emits.
func lessCritical(a, b synopses.CriticalPoint) bool {
	if !a.Time.Equal(b.Time) {
		return a.Time.Before(b.Time)
	}
	return a.ID < b.ID
}
