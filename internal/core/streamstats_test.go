package core

import (
	"testing"
	"time"

	"datacron/internal/gen"
	"datacron/internal/geo"
	"datacron/internal/mobility"
)

func mkReport(id string, sec int, speed float64) mobility.Report {
	return mobility.Report{
		ID: id, Time: gen.DefaultStart.Add(time.Duration(sec) * time.Second),
		Pos: geo.Pt(23, 37), SpeedKn: speed, Heading: 90,
	}
}

func TestWindowedSpeedStats(t *testing.T) {
	var reports []mobility.Report
	// Mover a: speeds 10..19 in the first 10-minute window, 20..24 in the second.
	for i := 0; i < 10; i++ {
		reports = append(reports, mkReport("a", i*60, 10+float64(i)))
	}
	for i := 0; i < 5; i++ {
		reports = append(reports, mkReport("a", 600+i*60, 20+float64(i)))
	}
	// Mover b: constant speed, first window only.
	for i := 0; i < 6; i++ {
		reports = append(reports, mkReport("b", i*60, 7))
	}
	// An invalid record is cleaned.
	reports = append(reports, mobility.Report{})

	stats := WindowedSpeedStats(reports, 10*time.Minute, 0)
	if len(stats) != 3 {
		t.Fatalf("windows = %d, want 3: %+v", len(stats), stats)
	}
	// Ordered by window end then mover: a[0-10), b[0-10), a[10-20).
	if stats[0].MoverID != "a" || stats[1].MoverID != "b" || stats[2].MoverID != "a" {
		t.Fatalf("order: %+v", stats)
	}
	a1 := stats[0]
	if a1.Count != 10 || a1.MinSpeedKn != 10 || a1.MaxSpeedKn != 19 || a1.MeanSpeedKn != 14.5 {
		t.Errorf("a window 1 = %+v", a1)
	}
	b := stats[1]
	if b.Count != 6 || b.MeanSpeedKn != 7 {
		t.Errorf("b window = %+v", b)
	}
	a2 := stats[2]
	if a2.Count != 5 || a2.MinSpeedKn != 20 || a2.MaxSpeedKn != 24 {
		t.Errorf("a window 2 = %+v", a2)
	}
}

func TestWindowedSpeedStatsOutOfOrder(t *testing.T) {
	reports := []mobility.Report{
		mkReport("a", 60, 10),
		mkReport("a", 30, 12), // 30s out of order, within lateness
		mkReport("a", 120, 14),
	}
	stats := WindowedSpeedStats(reports, 10*time.Minute, time.Minute)
	if len(stats) != 1 || stats[0].Count != 3 {
		t.Errorf("out-of-order handling: %+v", stats)
	}
}

func TestFleetRates(t *testing.T) {
	sim := gen.NewVesselSim(gen.VesselSimConfig{Seed: 2})
	reports := sim.Run(30 * time.Minute)
	rates := FleetRates(reports, 10*time.Minute)
	if len(rates) < 3 {
		t.Fatalf("windows = %d", len(rates))
	}
	total := 0
	for _, c := range rates {
		total += c
	}
	if total != len(reports) {
		t.Errorf("rate total %d != reports %d", total, len(reports))
	}
}
