package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"datacron/internal/checkpoint"
	"datacron/internal/checkpoint/faultinject"
	"datacron/internal/flp"
	"datacron/internal/linkdisc"
	"datacron/internal/msg"
	"datacron/internal/obs"
	"datacron/internal/ontology"
	"datacron/internal/rdf"
	"datacron/internal/rdfgen"
	"datacron/internal/shard"
	"datacron/internal/synopses"
)

// RecoveryConfig enables coordinated checkpointing (and, for tests and
// drills, fault injection) on a real-time run.
type RecoveryConfig struct {
	// Checkpointer holds the store and retention policy. The pipeline
	// registers its sources, outputs and operators on it, restores from the
	// latest valid checkpoint before consuming, and captures new checkpoints
	// at batch boundaries.
	Checkpointer *checkpoint.Checkpointer
	// EveryRecords triggers a checkpoint after at least this many records
	// since the previous one (0 disables the record-count trigger).
	EveryRecords int
	// Interval triggers a checkpoint when this much wall-clock time has
	// passed since the previous one (0 disables the timer trigger).
	Interval time.Duration
	// Injector, when non-nil, drives deterministic fault injection: crashes
	// (ErrInjectedCrash), dropped poll batches, and fetch delays.
	Injector *faultinject.Injector
}

// sourceGroup and sourceMember identify the real-time layer's consumer.
const (
	sourceGroup  = "realtime"
	sourceMember = "rt-1"
)

// pollBatch is the per-poll record cap. Checkpoints and shard barriers run
// only at batch boundaries, and the plane's per-shard queues are sized
// against it so a whole batch can be in flight without blocking.
const pollBatch = 256

// outputTopics are the topics the real-time layer produces to; recovery
// truncates them back to the checkpointed end offsets.
var outputTopics = []string{TopicSynopses, TopicTriples, TopicLinks, TopicEvents}

// runState is the checkpointed pipeline-global state that lives outside any
// single operator: the RDF node sequence counter and the run summary.
type runState struct {
	Seq int     `json:"seq"`
	Sum Summary `json:"sum"`
}

// runStateSnapshotter adapts pointers into the running loop's locals to the
// Snapshotter interface.
type runStateSnapshotter struct {
	seq *int
	sum *Summary
}

func (r runStateSnapshotter) Snapshot() ([]byte, error) {
	return json.Marshal(runState{Seq: *r.seq, Sum: *r.sum})
}

func (r runStateSnapshotter) Restore(data []byte) error {
	var st runState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: restore run state: %w", err)
	}
	*r.seq = st.Seq
	*r.sum = st.Sum
	return nil
}

// predictorsSnapshotter checkpoints the per-mover FLP predictor map. Every
// predictor the pipeline creates is an *flp.RMFStar, rebuilt on restore with
// the run's sampling interval.
type predictorsSnapshotter struct {
	preds  map[string]flp.Predictor
	sample time.Duration
}

func (ps predictorsSnapshotter) Snapshot() ([]byte, error) {
	ids := make([]string, 0, len(ps.preds))
	for id := range ps.preds {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make(map[string]json.RawMessage, len(ids))
	for _, id := range ids {
		snapper, ok := ps.preds[id].(checkpoint.Snapshotter)
		if !ok {
			return nil, notSnapshottableErr(id, ps.preds[id].Name())
		}
		blob, err := snapper.Snapshot()
		if err != nil {
			return nil, predictorErr("snapshot", id, err)
		}
		out[id] = blob
	}
	return json.Marshal(out)
}

// Cold-path error constructors for the predictor snapshot/restore loops,
// kept out of the loop bodies so hotalloc sees them allocation-free.
func notSnapshottableErr(id, name string) error {
	return fmt.Errorf("core: predictor %s (%s) is not snapshottable", id, name)
}

func predictorErr(verb, id string, err error) error {
	return fmt.Errorf("core: %s predictor %s: %w", verb, id, err)
}

func (ps predictorsSnapshotter) Restore(data []byte) error {
	var blobs map[string]json.RawMessage
	if err := json.Unmarshal(data, &blobs); err != nil {
		return fmt.Errorf("core: restore predictors: %w", err)
	}
	for id := range ps.preds {
		delete(ps.preds, id)
	}
	for id, blob := range blobs {
		pred := flp.NewRMFStar(ps.sample)
		if err := pred.Restore(blob); err != nil {
			return predictorErr("restore", id, err)
		}
		ps.preds[id] = pred
	}
	return nil
}

// RunWithRecovery is RunRealTime with coordinated checkpointing. With a nil
// rc (or nil rc.Checkpointer and rc.Injector) it behaves exactly like
// RunRealTime. Otherwise it restores broker offsets, output topics and
// operator state from the latest valid checkpoint before consuming — so
// calling it again on the same pipeline after a crash resumes from the last
// checkpoint and regenerates byte-identical output — and captures new
// checkpoints at poll-batch boundaries per the configured triggers.
//
// The Dashboard is a best-effort monitoring sink and is NOT checkpointed:
// after recovery it may hold duplicates from the replayed span. Everything
// published to broker topics is effectively-once.
func (p *Pipeline) RunWithRecovery(ctx context.Context, rc *RecoveryConfig) (Summary, error) {
	var sum Summary
	var cpr *checkpoint.Checkpointer
	var inj *faultinject.Injector
	if rc != nil {
		cpr = rc.Checkpointer
		inj = rc.Injector
	}

	// Build the operator set fresh; configuration-derived structure
	// (thresholds, grids, masks, automata) is rebuilt, dynamic state is
	// restored from the checkpoint below.
	//
	// Per-trajectory operators (synopses, area monitor, FLP) live inside
	// shard workers: one worker driven inline when shards=1, N plane
	// workers on their own goroutines otherwise. Cross-entity operators
	// (link discovery, CER, RDF sequencing, broker output) stay on this
	// goroutine — the serial merge stage — which applies worker results
	// in global submit order, so published output is byte-identical
	// whatever the shard count.
	shards := p.cfg.Shards
	if shards < 1 {
		shards = 1
	}
	workers := make([]*shardWorker, shards)
	shardRegs := make([]*obs.Registry, shards)
	for i := range workers {
		reg := p.obs
		if shards > 1 {
			// Each worker gets its own registry so per-trajectory metric
			// updates never contend; readers see them merged — aggregate
			// plus per-shard label — through MergedSnapshot.
			reg = obs.NewRegistry(p.clock)
		}
		shardRegs[i] = reg
		workers[i] = p.newShardWorker(i, reg)
	}
	var plane *shard.Plane[workerIn, workerOut]
	if shards > 1 {
		// The queue size doubles as the per-shard submit-credit pool: large
		// enough by default for a whole poll batch in flight, overridable by
		// WithFlow for tests that want to exercise credit backpressure.
		queue := 2 * pollBatch
		if p.flowCfg.ShardQueue > 0 {
			queue = p.flowCfg.ShardQueue
		}
		plane = shard.New(shard.Config{Shards: shards, Queue: queue, Metrics: p.obs},
			func(in workerIn) string { return in.rec.Key },
			func(i int) shard.Worker[workerIn, workerOut] { return workers[i] })
		defer plane.Close()
		p.setShardView(shardRegs, plane.Stats)
	} else {
		p.setShardView(nil, nil)
	}

	var disc *linkdisc.Discoverer
	if len(p.cfg.Statics) > 0 {
		disc = linkdisc.NewDiscoverer(p.cfg.Link, p.cfg.Statics)
		disc.Instrument(p.obs)
	}
	rdfGen := rdfgen.CriticalPointGenerator()
	seq := 0

	// Per-stage metric handles, resolved once; nil-safe no-ops when
	// instrumentation is off. The watermark gauge tracks the real-time
	// layer's event-time front; the health watchdog pairs it with
	// core.records to detect a stalled run.
	var (
		mRecords     = p.obs.Counter("core.records")
		mPredictions = p.obs.Counter("core.predictions")
		mAreaEvents  = p.obs.Counter("core.area_events")
		mWatermark   = p.obs.Gauge("core.watermark.unixsec")
		// Freshness accounting (processing time − record event time) for
		// the serial-merge stages; the per-trajectory stages observe their
		// own lag in the shard workers' registries (lag.decode.*).
		lagProcess = obs.NewLagStage(p.obs, "process")
		lagPredict = obs.NewLagStage(p.obs, "predict")
		lagEmit    = obs.NewLagStage(p.obs, "emit")
	)
	var maxEventTime time.Time

	p.log.Info("real-time run starting",
		"checkpointing", cpr != nil, "faults", inj != nil)
	if rc != nil {
		p.watchdog.SetCheckpointInterval(rc.Interval)
	}

	var shardSnaps *checkpoint.ShardSnapshots
	if cpr != nil {
		cpr.Instrument(p.obs)
		cpr.SetLogger(p.rootLog)
		cpr.RegisterSource(sourceGroup, TopicRaw)
		for _, t := range outputTopics {
			cpr.RegisterOutput(t)
		}
		if shards == 1 {
			// Single shard: the worker's operators register under the
			// bare legacy names, so the checkpoint format is unchanged.
			cpr.Register("synopses", workers[0].sg)
			cpr.Register("area", workers[0].areaMon)
		} else {
			// Sharded: per-worker state is only consistent at a barrier,
			// so it flows through the ShardSnapshots bridge under
			// "shard/<i>/<op>" names, with a meta entry pinning the
			// shard count.
			shardSnaps = checkpoint.NewShardSnapshots(shards, shardOps)
			shardSnaps.Register(cpr)
		}
		if disc != nil {
			cpr.Register("linkdisc", disc)
		}
		if p.forecaster != nil {
			cpr.Register("cer", p.forecaster)
		}
		cpr.Register("profiler", p.Profiler)
		if shards == 1 {
			cpr.Register("flp", predictorsSnapshotter{preds: workers[0].predictors, sample: p.cfg.SampleInterval})
		}
		cpr.Register("summary", runStateSnapshotter{seq: &seq, sum: &sum})

		// Metric state is monitoring-only and deliberately outside the
		// checkpoint: reset it (before restoring, so the restore itself is
		// the new run's first observation) and post-recovery readings cover
		// exactly the replayed span instead of double-counting the pre-crash
		// run. The trace sampler rewinds with it: its decisions depend only
		// on the record ordinal, so the replayed poll sequence reproduces
		// the original run's sampling — and, since spans never touch the
		// data path, replay output stays byte-identical either way.
		p.obs.Reset()
		p.sampler.Reset()
		cp, err := cpr.Restore(p.Broker)
		if err != nil {
			return sum, err
		}
		if cp != nil {
			if shardSnaps != nil {
				// The bridge staged each worker's blobs during Restore;
				// apply them now, before Start, while the workers are
				// still single-threaded.
				for i, w := range workers {
					if err := w.Restore(shardSnaps.Restored(i)); err != nil {
						return sum, err
					}
				}
			}
			p.log.Info("restored from checkpoint",
				"generation", cp.Generation, "records", sum.RawIn, "shards", shards)
		}
		if cp == nil {
			// No checkpoint: cold start. A previous crashed attempt may
			// still have committed offsets and produced output, so rewind
			// the world to generation zero for effectively-once replay.
			p.Broker.RestoreOffsets(sourceGroup, TopicRaw, nil)
			for _, t := range outputTopics {
				n, err := p.Broker.Partitions(t)
				if err != nil {
					return sum, err
				}
				for i := 0; i < n; i++ {
					if err := p.Broker.Truncate(t, i, 0); err != nil {
						return sum, err
					}
				}
			}
			p.Profiler.Reset()
			if p.forecaster != nil {
				p.forecaster.Reset()
			}
		}
	}

	if plane != nil {
		plane.Start()
	}

	// The consumer is created after the restore so its first rebalance
	// picks up the restored committed offsets.
	cons, err := p.Broker.NewConsumer(sourceGroup, TopicRaw, sourceMember)
	if err != nil {
		return sum, err
	}
	defer cons.Close()
	// Capture end-of-run component stats for Pipeline.Stats (runs before
	// cons.Close: deferred calls execute last-in first-out).
	defer func() {
		// On the crash/error return path the plane may still have workers
		// mid-record; stop them (idempotent) before reading their state.
		if plane != nil {
			plane.Close()
		}
		p.mu.Lock()
		p.lastSyn = aggregateSynStats(workers)
		if disc != nil {
			p.lastLink = disc.Stats()
		}
		p.lastCons = cons.Stats()
		p.lastSum = sum
		p.mu.Unlock()
	}()

	// One-element scratch buffer reused for every discovered link's triple,
	// so the per-link publish does not allocate a fresh slice each time.
	linkTriple := make([]rdf.Triple, 1)
	processCritical := func(cp synopses.CriticalPoint, root obs.Span) error {
		// Freshness at the serving edge: how old the critical point's event
		// time is at the moment its derivatives are published downstream —
		// the end-to-end number an operator's SLO is written against.
		lagEmit.Observe(p.clock.Now(), cp.Time)
		emitSpan := root.Child("emit")
		defer emitSpan.End()
		sum.CriticalPoints++
		p.Dashboard.AddCritical(cp)
		// Publish the synopsis record.
		if _, err := p.Broker.Produce(ctx, TopicSynopses, cp.ID, cp.Marshal(), cp.Time); err != nil {
			return err
		}
		// RDF-ify.
		triples := rdfGen.Generate(rdfgen.CriticalPointRecord(seq, cp))
		// Weather enrichment: annotate the semantic node with the ambient
		// conditions at its position and time.
		if p.cfg.Weather != nil {
			node := ontology.NodeIRI(cp.ID, seq)
			triples = append(triples,
				rdf.Triple{S: node, P: ontology.PropWindSpeed,
					O: rdf.Float(p.cfg.Weather.WindSpeed(cp.Pos, cp.Time))},
				rdf.Triple{S: node, P: ontology.PropWaveHeight,
					O: rdf.Float(p.cfg.Weather.WaveHeight(cp.Pos, cp.Time))},
			)
		}
		sum.Triples += int64(len(triples))
		if err := p.publishTriples(ctx, triples, cp.Time); err != nil {
			return err
		}
		// Link discovery on the critical point.
		if disc != nil {
			for _, l := range disc.ProcessPoint(cp.ID, cp.Time, cp.Pos) {
				sum.Links++
				p.Dashboard.AddLink(l)
				t := l.Triple()
				if _, err := p.Broker.Produce(ctx, TopicLinks, l.Source, []byte(t.String()), l.Time); err != nil {
					return err
				}
				sum.Triples++
				linkTriple[0] = t
				if err := p.publishTriples(ctx, linkTriple, l.Time); err != nil {
					return err
				}
			}
		}
		// Complex event forecasting on the critical-point type stream.
		if p.forecaster != nil {
			cerSpan := root.Child("cer")
			defer cerSpan.End()
			detected, fc, ok := p.forecaster.Process(string(cp.Type))
			if detected {
				sum.Detections++
				p.Dashboard.AddEventNote(fmt.Sprintf("%s: pattern detected at %s", cp.ID, cp.Time.Format(time.RFC3339)))
			}
			if ok {
				sum.Forecasts++
				note := fmt.Sprintf("%s: completion expected in %d-%d events (p=%.2f)", cp.ID, fc.Start, fc.End, fc.Prob)
				p.Dashboard.AddEventNote(note)
				if _, err := p.Broker.Produce(ctx, TopicEvents, cp.ID, []byte(note), cp.Time); err != nil {
					return err
				}
			}
		}
		seq++
		return nil
	}

	// apply is the serial merge stage: it folds one record's shard-local
	// result into the cross-entity operators in global submit order. It
	// always ends the record's trace root — success, corrupt record or
	// error — so sampled span trees never leak open spans.
	apply := func(rec msg.Record, out workerOut) error {
		defer out.root.End()
		if !out.ok {
			return nil // corrupt record: dropped by the cleaning stage
		}
		sum.RawIn++
		mRecords.Inc()
		now := p.clock.Now()
		lagProcess.Observe(now, out.rep.Time)
		if out.rep.Time.After(maxEventTime) {
			maxEventTime = out.rep.Time
			mWatermark.Set(float64(maxEventTime.Unix()))
		}
		if out.valid {
			p.Profiler.Observe(out.rep)
			sum.AreaEvents += out.areaEvents
			mAreaEvents.Add(out.areaEvents)
			p.Dashboard.UpdatePosition(out.rep)
			if out.pred != nil {
				sum.Predictions++
				mPredictions.Inc()
				p.Dashboard.SetPrediction(out.rep.ID, out.pred)
				// Prediction freshness is the headline SLO family: the lag
				// between a mover's event time and the moment its future
				// locations became available to serve.
				lagPredict.Observe(now, out.rep.Time)
			}
		}
		for _, cp := range out.cps {
			if err := processCritical(cp, out.root); err != nil {
				return err
			}
		}
		cons.Commit(rec)
		return nil
	}

	// barrier coordinates a consistent cut across the plane and stages
	// the per-shard snapshots for the next Capture. Called only between
	// fully drained poll batches.
	barrier := func() error {
		if plane == nil || shardSnaps == nil {
			return nil
		}
		epoch := cpr.NextGeneration()
		states, err := plane.Barrier(epoch)
		if err != nil {
			return err
		}
		return shardSnaps.SetEpoch(epoch, states)
	}

	// The interval trigger reads the pipeline's injected clock, never the
	// wall clock directly: a run driven by an obs.ManualClock checkpoints at
	// deterministic points, so replay stays byte-identical.
	var (
		recsSinceCp   int
		lastCp        = p.clock.Now()
		submitScratch []workerIn // reused batch fan-out buffer (sharded runs)
	)
	maybeCheckpoint := func() error {
		if cpr == nil || rc == nil {
			return nil
		}
		due := (rc.EveryRecords > 0 && recsSinceCp >= rc.EveryRecords) ||
			(rc.Interval > 0 && p.clock.Now().Sub(lastCp) >= rc.Interval)
		if !due {
			return nil
		}
		if err := barrier(); err != nil {
			return err
		}
		span := p.tracer.Start("checkpoint")
		gen, err := cpr.Capture(p.Broker)
		span.End()
		if err != nil {
			return err
		}
		p.log.Debug("checkpoint captured",
			"generation", gen, "records", sum.RawIn, "span", span.ID())
		recsSinceCp = 0
		lastCp = p.clock.Now()
		return nil
	}

	for {
		// The broker returns buffered records regardless of ctx state, so a
		// cancelled context (SIGINT/SIGTERM in cmd/datacron) must be checked
		// here for shutdown to interrupt a drain of queued records.
		if err := ctx.Err(); err != nil {
			// Leave a consistent cut staged for a caller-driven final
			// capture (cmd/datacron's graceful shutdown): the plane is
			// drained here, so the barrier is valid.
			if cpr != nil {
				_ = barrier()
			}
			return sum, err
		}
		if inj != nil {
			if d := inj.Delay(); d > 0 {
				time.Sleep(d)
			}
		}
		pollSpan := p.tracer.Start("poll")
		recs, err := cons.Poll(ctx, pollBatch)
		pollSpan.End()
		if errors.Is(err, msg.ErrClosed) {
			break
		}
		if err != nil {
			return sum, err
		}
		if inj != nil && len(recs) > 0 && inj.DropBatch() {
			// Simulated lost fetch response: rewind the consumer's position
			// and re-poll, as a real client would after a fetch timeout.
			if err := cons.SeekTo(recs[0].Partition, recs[0].Offset); err != nil {
				return sum, err
			}
			continue
		}
		procSpan := p.tracer.Start("process")
		// Fan the whole batch out to the shard workers (per-trajectory
		// stages run in parallel), then drain and apply results in submit
		// order on this goroutine. With one shard the worker runs inline —
		// the identical code path minus the goroutine hop. Sampling is
		// decided here, in batch order, on both paths: the decision stream
		// is identical whatever the shard count, and — because it depends
		// only on the record ordinal — identical again under replay.
		//
		// The batch goes to the plane through SubmitBatch — one credit
		// acquisition pass per lane instead of one select per record — via a
		// reused workerIn scratch, so the steady-state fan-out allocates
		// nothing per record. The poll batch is half the plane's queue depth,
		// inside SubmitBatch's per-lane bound.
		if plane != nil {
			if cap(submitScratch) < len(recs) {
				submitScratch = make([]workerIn, len(recs))
			}
			ins := submitScratch[:len(recs)]
			for i, rec := range recs {
				ins[i] = p.newWorkerIn(rec, true)
			}
			if err := plane.SubmitBatch(ctx, ins); err != nil {
				procSpan.End()
				return sum, err
			}
		}
		for _, rec := range recs {
			if inj != nil {
				if err := inj.BeforeRecord(); err != nil {
					// Simulated crash: undrained worker outputs are
					// discarded with the process state, exactly like a
					// real crash mid-batch.
					procSpan.End()
					return sum, err
				}
			}
			var out workerOut
			if plane != nil {
				if out, err = plane.Next(); err != nil {
					procSpan.End()
					return sum, err
				}
			} else {
				out = workers[0].Process(p.newWorkerIn(rec, false))
			}
			if err := apply(rec, out); err != nil {
				procSpan.End()
				return sum, err
			}
		}
		procSpan.End()
		// Checkpoints are captured only between poll batches: every record
		// of the batch is committed, so the consumer's fetch positions equal
		// the group's committed offsets — the consistent cut a restored run
		// resumes from, replaying the identical poll sequence.
		recsSinceCp += len(recs)
		if err := maybeCheckpoint(); err != nil {
			return sum, err
		}
	}
	// Flush trajectory ends. Each worker flushes its own movers sorted by
	// (time, ID); the k-way merge with the same comparator reproduces the
	// exact sequence a single shard emits.
	var ends []synopses.CriticalPoint
	if plane != nil {
		plane.Close() // workers are single-threaded again after Close
		lists := make([][]synopses.CriticalPoint, len(workers))
		for i, w := range workers {
			lists[i] = w.Flush()
		}
		ends = shard.MergeSorted(lessCritical, lists...)
	} else {
		ends = workers[0].Flush()
	}
	for _, cp := range ends {
		// Flush-time critical points have no originating record in flight,
		// so they carry no trace root.
		if err := processCritical(cp, obs.Span{}); err != nil {
			return sum, err
		}
	}
	for _, t := range outputTopics {
		if err := p.Broker.CloseTopic(t); err != nil {
			return sum, err
		}
	}
	sum.Compression = aggregateSynStats(workers).CompressionRatio()
	p.log.Info("real-time run complete",
		"records", sum.RawIn, "critical", sum.CriticalPoints,
		"triples", sum.Triples, "links", sum.Links, "shards", shards)
	return sum, nil
}
