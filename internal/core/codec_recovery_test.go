package core

import (
	"context"
	"fmt"
	"testing"

	"datacron/internal/checkpoint"
	"datacron/internal/checkpoint/faultinject"
	"datacron/internal/mobility"
)

// ingestMixedFormats produces the report stream straight onto the raw topic
// with alternating wire formats — legacy JSON for every third record, the
// binary/v1 codec for the rest — emulating a replay log written across the
// codec migration. Keys and event times match what Pipeline.Ingest assigns,
// so the partition layout is identical to a normal ingest.
func ingestMixedFormats(t *testing.T, p *Pipeline, reports []mobility.Report) {
	t.Helper()
	ctx := context.Background()
	for i, r := range reports {
		var value []byte
		if i%3 == 0 {
			value = r.Marshal() // legacy JSON era
		} else {
			value = r.AppendBinary(make([]byte, 0, r.BinarySize()))
		}
		if _, err := p.Broker.Produce(ctx, TopicRaw, r.ID, value, r.Time); err != nil {
			t.Fatalf("produce record %d: %v", i, err)
		}
	}
	if err := p.Broker.CloseTopic(TopicRaw); err != nil {
		t.Fatal(err)
	}
}

// TestMixedFormatByteIdenticalOutput pins wire-format independence: the same
// report stream replayed as all-binary (the Ingest default) and as a mixed
// JSON/binary log must publish byte-identical output topics — the sniffing
// decoder makes the on-the-wire encoding invisible downstream.
func TestMixedFormatByteIdenticalOutput(t *testing.T) {
	base, reports := shardedMaritimePipeline(t, true, 1)
	if err := base.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	baseSum, err := base.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	mixed, reports2 := shardedMaritimePipeline(t, true, 1)
	if len(reports2) != len(reports) {
		t.Fatalf("simulation not deterministic: %d vs %d reports", len(reports2), len(reports))
	}
	ingestMixedFormats(t, mixed, reports2)
	sum, err := mixed.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sum) != fmt.Sprint(baseSum) {
		t.Errorf("summaries differ:\nbinary %v\nmixed  %v", baseSum, sum)
	}
	requireIdenticalTopics(t, base.Broker, mixed.Broker)
}

// TestMixedFormatCrashRecoveryByteIdentical is the codec migration's
// fault-tolerance guarantee: a 4-shard pipeline replaying a mixed
// JSON/binary raw log, killed repeatedly mid-stream and recovered from
// barrier-coordinated checkpoints, must reproduce byte for byte the output
// of an uninterrupted single-shard run over the same mixed log.
func TestMixedFormatCrashRecoveryByteIdentical(t *testing.T) {
	base, reports := shardedMaritimePipeline(t, true, 1)
	ingestMixedFormats(t, base, reports)
	baseSum, err := base.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	faulty, reports2 := shardedMaritimePipeline(t, true, 4)
	if len(reports2) != len(reports) {
		t.Fatalf("simulation not deterministic: %d vs %d reports", len(reports2), len(reports))
	}
	ingestMixedFormats(t, faulty, reports2)
	cpr, err := checkpoint.NewCheckpointer(checkpoint.NewMemStore(), 3)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{
		Seed:     42,
		KillMin:  900,
		KillMax:  1500,
		DropProb: 0.01,
	})
	rc := &RecoveryConfig{Checkpointer: cpr, EveryRecords: 300, Injector: inj}

	sum, restarts := runUntilDone(t, faulty, rc, 100)
	if inj.Kills() < 2 {
		t.Fatalf("only %d crashes injected; the test proved nothing", inj.Kills())
	}
	t.Logf("mixed-format 4-shard pipeline recovered from %d crashes (%d restarts, %d checkpoints)",
		inj.Kills(), restarts, cpr.Captures())

	if fmt.Sprint(sum) != fmt.Sprint(baseSum) {
		t.Errorf("summaries differ:\nserial  %v\nsharded %v", baseSum, sum)
	}
	requireIdenticalTopics(t, base.Broker, faulty.Broker)
}
