package core

import (
	"context"
	"fmt"
	"testing"

	"datacron/internal/checkpoint"
	"datacron/internal/checkpoint/faultinject"
)

// TestShardedByteIdenticalOutput pins the shard plane's headline contract:
// the full maritime pipeline (synopses, FLP, link discovery, CER, weather-
// free RDF) run with 1, 2 and 4 shards over the same seeded input must
// publish byte-identical output topics and an identical summary.
func TestShardedByteIdenticalOutput(t *testing.T) {
	base, reports := shardedMaritimePipeline(t, true, 1)
	if err := base.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	baseSum, err := base.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 4} {
		p, reports2 := shardedMaritimePipeline(t, true, shards)
		if len(reports2) != len(reports) {
			t.Fatalf("simulation not deterministic: %d vs %d reports", len(reports2), len(reports))
		}
		if err := p.Ingest(context.Background(), reports2); err != nil {
			t.Fatal(err)
		}
		sum, err := p.RunRealTime(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(sum) != fmt.Sprint(baseSum) {
			t.Errorf("shards=%d: summaries differ:\nserial  %v\nsharded %v", shards, baseSum, sum)
		}
		requireIdenticalTopics(t, base.Broker, p.Broker)

		stats := p.Stats()
		if len(stats.Shards) != shards {
			t.Fatalf("shards=%d: Stats().Shards has %d rows", shards, len(stats.Shards))
		}
		var total int64
		for _, row := range stats.Shards {
			total += row.Records
		}
		if total != int64(len(reports)) {
			t.Errorf("shards=%d: per-shard records sum to %d, want %d", shards, total, len(reports))
		}
		// The merged view must agree with the serial run on the aggregate
		// synopses counters while also carrying the per-shard labels.
		merged := p.MergedSnapshot()
		if got, want := merged.Counter("synopses.critical"), base.Obs().Snapshot().Counter("synopses.critical"); got != want {
			t.Errorf("shards=%d: aggregate synopses.critical = %d, want %d", shards, got, want)
		}
		var labelled int64
		for i := 0; i < shards; i++ {
			labelled += merged.Counter(fmt.Sprintf("shard.%d.synopses.critical", i))
		}
		if labelled != merged.Counter("synopses.critical") {
			t.Errorf("shards=%d: per-shard labels sum to %d, aggregate %d", shards, labelled, merged.Counter("synopses.critical"))
		}
	}
}

// TestShardedRecoveryByteIdenticalOutput extends the fault-tolerance
// guarantee to the sharded loop: a 4-shard pipeline killed repeatedly
// mid-stream and recovered from barrier-coordinated checkpoints must
// reproduce, byte for byte, the output of an uninterrupted serial run.
func TestShardedRecoveryByteIdenticalOutput(t *testing.T) {
	base, reports := shardedMaritimePipeline(t, true, 1)
	if err := base.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	baseSum, err := base.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	faulty, reports2 := shardedMaritimePipeline(t, true, 4)
	if len(reports2) != len(reports) {
		t.Fatalf("simulation not deterministic: %d vs %d reports", len(reports2), len(reports))
	}
	if err := faulty.Ingest(context.Background(), reports2); err != nil {
		t.Fatal(err)
	}
	cpr, err := checkpoint.NewCheckpointer(checkpoint.NewMemStore(), 3)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{
		Seed:     42,
		KillMin:  900,
		KillMax:  1500,
		DropProb: 0.01,
	})
	rc := &RecoveryConfig{Checkpointer: cpr, EveryRecords: 300, Injector: inj}

	sum, restarts := runUntilDone(t, faulty, rc, 100)
	if inj.Kills() < 2 {
		t.Fatalf("only %d crashes injected; the test proved nothing", inj.Kills())
	}
	t.Logf("4-shard pipeline recovered from %d crashes (%d restarts, %d checkpoints)",
		inj.Kills(), restarts, cpr.Captures())

	if fmt.Sprint(sum) != fmt.Sprint(baseSum) {
		t.Errorf("summaries differ:\nserial  %v\nsharded %v", baseSum, sum)
	}
	requireIdenticalTopics(t, base.Broker, faulty.Broker)
}

// TestShardedCheckpointShardCountPinned: restoring a checkpoint captured
// at one shard count into a pipeline configured with another must fail
// loudly instead of misrouting per-trajectory state.
func TestShardedCheckpointShardCountPinned(t *testing.T) {
	p2, reports := shardedMaritimePipeline(t, false, 2)
	if err := p2.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	store := checkpoint.NewMemStore()
	cpr, err := checkpoint.NewCheckpointer(store, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Crash once after at least one checkpoint so the store holds state.
	inj := faultinject.New(faultinject.Config{Seed: 9, KillMin: 900, KillMax: 1200})
	_, err = p2.RunWithRecovery(context.Background(), &RecoveryConfig{
		Checkpointer: cpr, EveryRecords: 300, Injector: inj,
	})
	if err == nil {
		t.Fatal("run finished before the injected crash; raise KillMin")
	}
	if cpr.Captures() == 0 {
		t.Fatal("no checkpoint captured before the crash")
	}

	p4, reports4 := shardedMaritimePipeline(t, false, 4)
	if err := p4.Ingest(context.Background(), reports4); err != nil {
		t.Fatal(err)
	}
	cpr4, err := checkpoint.NewCheckpointer(store, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p4.RunWithRecovery(context.Background(), &RecoveryConfig{Checkpointer: cpr4, EveryRecords: 300})
	if err == nil {
		t.Fatal("restore with mismatched shard count must fail")
	}
}
