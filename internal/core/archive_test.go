package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"datacron/internal/analytics"
	"datacron/internal/gen"
	"datacron/internal/msg"
	"datacron/internal/ontology"
	"datacron/internal/rdf"
	"datacron/internal/store"
)

func TestExportAndLoadArchive(t *testing.T) {
	p, reports := maritimePipeline(t, false)
	if err := p.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	sum, err := p.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := p.ExportTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != sum.Triples {
		t.Errorf("exported %d, summary says %d", n, sum.Triples)
	}
	lines := strings.Count(buf.String(), "\n")
	if int64(lines) != n {
		t.Errorf("archive has %d lines, want %d", lines, n)
	}

	// Rebuild the KG from the archive and compare to the broker-built one.
	cellCfg := store.STCellConfig{
		Extent: region, Cols: 32, Rows: 32,
		Epoch: gen.DefaultStart, BucketSize: time.Hour, TimeBuckets: 24 * 30,
	}
	fromArchive, err := LoadArchive(bytes.NewReader(buf.Bytes()), cellCfg, store.NewVerticalPartitioning())
	if err != nil {
		t.Fatal(err)
	}
	fromBroker, err := p.BuildKnowledgeGraph(cellCfg, store.NewVerticalPartitioning())
	if err != nil {
		t.Fatal(err)
	}
	if fromArchive.Len() != fromBroker.Len() {
		t.Errorf("archive KG %d triples, broker KG %d", fromArchive.Len(), fromBroker.Len())
	}
	// Same query, same answers.
	q := store.StarQuery{
		Patterns: []store.PO{
			{Pred: rdf.RDFType, Obj: ontology.ClassSemanticNode},
		},
		Rect:      region,
		TimeStart: gen.DefaultStart,
		TimeEnd:   gen.DefaultStart.Add(2 * time.Hour),
	}
	a, _, _ := fromArchive.StarJoin(q, store.EncodedPruning)
	b, _, _ := fromBroker.StarJoin(q, store.EncodedPruning)
	if len(a) != len(b) {
		t.Errorf("archive query %d results, broker query %d", len(a), len(b))
	}
}

func TestLoadArchiveBadInput(t *testing.T) {
	cellCfg := store.STCellConfig{Extent: region, Epoch: gen.DefaultStart}
	if _, err := LoadArchive(strings.NewReader("not ntriples"), cellCfg, store.NewPropertyTable()); err == nil {
		t.Error("malformed archive should fail")
	}
	// Empty archive is a valid empty store.
	st, err := LoadArchive(strings.NewReader(""), cellCfg, store.NewPropertyTable())
	if err != nil || st.Len() != 0 {
		t.Errorf("empty archive: %v, %d", err, st.Len())
	}
}

func TestMinePatternsFromArchive(t *testing.T) {
	p, reports := maritimePipeline(t, false)
	if err := p.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunRealTime(context.Background()); err != nil {
		t.Fatal(err)
	}
	proposals, err := p.MinePatterns(analytics.MineConfig{MinSupport: 4, MaxLength: 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(proposals) == 0 {
		t.Fatal("no patterns mined from the archive")
	}
	for _, prop := range proposals {
		if prop.Support < 4 || len(prop.Items) < 2 {
			t.Errorf("malformed proposal: %+v", prop)
		}
	}
}

func TestReplayTopic(t *testing.T) {
	p, reports := maritimePipeline(t, false)
	if err := p.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	fresh := msg.NewBroker()
	n, err := ReplayTopic(context.Background(), p.Broker, TopicRaw, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(reports)) {
		t.Errorf("replayed %d, want %d", n, len(reports))
	}
	got, err := fresh.TotalRecords(TopicRaw)
	if err != nil || got != n {
		t.Errorf("fresh broker holds %d (%v)", got, err)
	}
}
