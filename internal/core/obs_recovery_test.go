package core

import (
	"context"
	"fmt"
	"testing"

	"datacron/internal/checkpoint"
	"datacron/internal/checkpoint/faultinject"
)

// TestInstrumentedRecoveryByteIdentical pins the central contract between
// metrics and checkpointing: instrumentation must be invisible to the data
// path. A fully instrumented pipeline killed and recovered mid-stream must
// publish byte-identical topics and an identical summary to an uninterrupted
// run with instrumentation disabled entirely.
func TestInstrumentedRecoveryByteIdentical(t *testing.T) {
	base, reports := maritimePipeline(t, true)
	// Strip the default registry and tracer: the baseline observes nothing.
	base.obs = nil
	base.tracer = nil
	if err := base.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	baseSum, err := base.RunRealTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	faulty, reports2 := maritimePipeline(t, true)
	if faulty.Obs() == nil || faulty.Tracer() == nil {
		t.Fatal("test premise broken: maritimePipeline must be instrumented by default")
	}
	if err := faulty.Ingest(context.Background(), reports2); err != nil {
		t.Fatal(err)
	}
	cpr, err := checkpoint.NewCheckpointer(checkpoint.NewMemStore(), 3)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{Seed: 42, KillMin: 900, KillMax: 1500, DropProb: 0.01})
	rc := &RecoveryConfig{Checkpointer: cpr, EveryRecords: 300, Injector: inj}

	sum, restarts := runUntilDone(t, faulty, rc, 100)
	if inj.Kills() < 2 {
		t.Fatalf("only %d crashes injected; the test proved nothing", inj.Kills())
	}
	t.Logf("instrumented run recovered from %d crashes (%d restarts)", inj.Kills(), restarts)

	if fmt.Sprint(sum) != fmt.Sprint(baseSum) {
		t.Errorf("summaries differ:\nuninstrumented %v\ninstrumented   %v", baseSum, sum)
	}
	requireIdenticalTopics(t, base.Broker, faulty.Broker)
}

// TestRecoveryResetsMetrics verifies the registry's recovery semantics:
// metric state is monitoring-only and lives outside the checkpoint, so each
// restore resets it and the final readings cover exactly the span replayed
// since the last restart — never the double-counted pre-crash run.
func TestRecoveryResetsMetrics(t *testing.T) {
	p, reports := maritimePipeline(t, false)
	if err := p.Ingest(context.Background(), reports); err != nil {
		t.Fatal(err)
	}
	cpr, err := checkpoint.NewCheckpointer(checkpoint.NewMemStore(), 3)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{Seed: 42, KillMin: 900, KillMax: 1500})
	rc := &RecoveryConfig{Checkpointer: cpr, EveryRecords: 300, Injector: inj}

	sum, restarts := runUntilDone(t, p, rc, 100)
	if restarts < 2 {
		t.Fatalf("only %d restarts; the reset semantics were not exercised", restarts)
	}

	st := p.Stats()
	records := st.Metrics.Counter("core.records")
	if records <= 0 {
		t.Fatal("core.records must count the final run's replayed records")
	}
	// Every restart replays from a checkpoint strictly past the start of the
	// stream, so the final (post-reset) count must be well short of the total.
	if records >= sum.RawIn {
		t.Errorf("core.records = %d after %d restarts, want < total RawIn %d (registry not reset on restore)",
			records, restarts, sum.RawIn)
	}
	// Operator state DOES survive restores: the mirrored synopses counters
	// are re-anchored, not reset, so the registry's critical-point count also
	// stays bounded by the replayed span while the component stats cover the
	// whole stream.
	if crit := st.Metrics.Counter("synopses.critical"); crit >= sum.CriticalPoints {
		t.Errorf("synopses.critical = %d, want < full-run count %d", crit, sum.CriticalPoints)
	}
	if st.Synopses.Critical != sum.CriticalPoints {
		t.Errorf("component stats must span the whole run: synopses %d, summary %d",
			st.Synopses.Critical, sum.CriticalPoints)
	}
	// The capture counter was reset with everything else (the final run may
	// even capture nothing if it replays only a short tail); the
	// checkpointer's own lifetime count keeps the full total.
	if caps := st.Metrics.Counter("checkpoint.captures"); caps >= int64(cpr.Captures()) {
		t.Errorf("checkpoint.captures = %d, want < lifetime total %d (registry not reset)", caps, cpr.Captures())
	}
	if restores := st.Metrics.Counter("checkpoint.restores"); restores != 1 {
		t.Errorf("checkpoint.restores = %d after reset, want exactly the final run's restore", restores)
	}
}
