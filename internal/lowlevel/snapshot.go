package lowlevel

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"datacron/internal/mobility"
)

// runningStatsSnapshot is the wire form of RunningStats. Min/Max are pointers
// so the ±Inf sentinels of an empty accumulator (not representable in JSON)
// can be omitted and re-seeded on restore. Lo/Hi are the heap slices verbatim:
// the heap invariant is positional, so copying the backing arrays preserves it.
type runningStatsSnapshot struct {
	N   int64     `json:"n"`
	Sum float64   `json:"sum"`
	Min *float64  `json:"min,omitempty"`
	Max *float64  `json:"max,omitempty"`
	Lo  []float64 `json:"lo,omitempty"`
	Hi  []float64 `json:"hi,omitempty"`
}

func snapshotStats(s *RunningStats) runningStatsSnapshot {
	snap := runningStatsSnapshot{N: s.n, Sum: s.sum, Lo: s.lo, Hi: s.hi}
	if s.n > 0 {
		mn, mx := s.min, s.max
		snap.Min, snap.Max = &mn, &mx
	}
	return snap
}

func restoreStats(snap runningStatsSnapshot) *RunningStats {
	s := NewRunningStats()
	s.n = snap.N
	s.sum = snap.Sum
	if snap.Min != nil {
		s.min = *snap.Min
	}
	if snap.Max != nil {
		s.max = *snap.Max
	}
	s.lo = maxHeap(snap.Lo)
	s.hi = minHeap(snap.Hi)
	return s
}

// profileSnapshot is the wire form of TrajectoryProfile.
type profileSnapshot struct {
	MoverID string               `json:"id"`
	Speed   runningStatsSnapshot `json:"speed"`
	Accel   runningStatsSnapshot `json:"accel"`
	Last    mobility.Report      `json:"last"`
	HasLast bool                 `json:"hasLast,omitempty"`
}

// Snapshot serializes every mover's profile (checkpoint.Snapshotter).
func (pf *Profiler) Snapshot() ([]byte, error) {
	out := make(map[string]profileSnapshot, len(pf.profiles))
	for id, p := range pf.profiles {
		out[id] = profileSnapshot{
			MoverID: p.MoverID,
			Speed:   snapshotStats(p.Speed),
			Accel:   snapshotStats(p.Accel),
			Last:    p.last,
			HasLast: p.hasLast,
		}
	}
	return json.Marshal(out)
}

// Restore replaces the profiler's state with a snapshot taken by Snapshot.
func (pf *Profiler) Restore(data []byte) error {
	var snaps map[string]profileSnapshot
	if err := json.Unmarshal(data, &snaps); err != nil {
		return fmt.Errorf("lowlevel: restore profiler: %w", err)
	}
	pf.profiles = make(map[string]*TrajectoryProfile, len(snaps))
	for id, ps := range snaps {
		if math.IsNaN(ps.Speed.Sum) || math.IsNaN(ps.Accel.Sum) {
			return fmt.Errorf("lowlevel: restore profiler: NaN sum for %s", id)
		}
		pf.profiles[id] = &TrajectoryProfile{
			MoverID: ps.MoverID,
			Speed:   restoreStats(ps.Speed),
			Accel:   restoreStats(ps.Accel),
			last:    ps.Last,
			hasLast: ps.HasLast,
		}
	}
	return nil
}

// Snapshot serializes the monitor's inside-sets (checkpoint.Snapshotter).
// The region index and grid are functions of the configured regions, rebuilt
// identically on restart, so only the dynamic membership is captured. Region
// indices are stored sorted for deterministic encoding.
func (m *AreaMonitor) Snapshot() ([]byte, error) {
	out := make(map[string][]int, len(m.inside))
	for id, set := range m.inside {
		ris := make([]int, 0, len(set))
		for ri := range set {
			ris = append(ris, ri)
		}
		sort.Ints(ris)
		out[id] = ris
	}
	return json.Marshal(out)
}

// Restore replaces the monitor's inside-sets with a snapshot taken by
// Snapshot against a monitor built over the same regions.
func (m *AreaMonitor) Restore(data []byte) error {
	var snaps map[string][]int
	if err := json.Unmarshal(data, &snaps); err != nil {
		return fmt.Errorf("lowlevel: restore area monitor: %w", err)
	}
	inside := make(map[string]map[int]bool, len(snaps))
	for id, ris := range snaps {
		set := make(map[int]bool, len(ris))
		for _, ri := range ris {
			if ri < 0 || ri >= len(m.regions) {
				return fmt.Errorf("lowlevel: restore area monitor: region index %d out of range for %d regions", ri, len(m.regions))
			}
			set[ri] = true
		}
		if len(set) > 0 {
			inside[id] = set
		}
	}
	m.inside = inside
	return nil
}
