// Package lowlevel implements the in-situ low-level event detection of
// Section 4.2.1: per-trajectory running statistics (min/max/average/median)
// of derived motion attributes such as speed and acceleration, and the
// annotation of position streams with area entry/exit events against a set
// of monitored geographical zones.
package lowlevel

import (
	"container/heap"
	"math"
)

// RunningStats maintains exact min, max, mean and median of a value stream
// in O(log n) per observation, using the classic two-heap median algorithm.
type RunningStats struct {
	min, max float64
	sum      float64
	n        int64
	lo       maxHeap // values <= median
	hi       minHeap // values >= median
}

// NewRunningStats returns empty statistics.
func NewRunningStats() *RunningStats {
	return &RunningStats{min: math.Inf(1), max: math.Inf(-1)}
}

// Observe adds a value.
func (s *RunningStats) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	s.n++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	// Median maintenance.
	if s.lo.Len() == 0 || v <= s.lo.peek() {
		heap.Push(&s.lo, v)
	} else {
		heap.Push(&s.hi, v)
	}
	if s.lo.Len() > s.hi.Len()+1 {
		heap.Push(&s.hi, heap.Pop(&s.lo))
	} else if s.hi.Len() > s.lo.Len() {
		heap.Push(&s.lo, heap.Pop(&s.hi))
	}
}

// N returns the number of observations.
func (s *RunningStats) N() int64 { return s.n }

// Min returns the minimum, or NaN when empty.
func (s *RunningStats) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the maximum, or NaN when empty.
func (s *RunningStats) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Mean returns the average, or NaN when empty.
func (s *RunningStats) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.n)
}

// Median returns the running median (average of the two central values for
// even counts), or NaN when empty.
func (s *RunningStats) Median() float64 {
	switch {
	case s.n == 0:
		return math.NaN()
	case s.lo.Len() > s.hi.Len():
		return s.lo.peek()
	default:
		return (s.lo.peek() + s.hi.peek()) / 2
	}
}

// maxHeap and minHeap are float64 heaps for the median.
type maxHeap []float64

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
func (h maxHeap) peek() float64 { return h[0] }

type minHeap []float64

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
func (h minHeap) peek() float64 { return h[0] }
