package lowlevel

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"datacron/internal/geo"
	"datacron/internal/mobility"
)

var t0 = time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC)

func TestRunningStatsBasics(t *testing.T) {
	s := NewRunningStats()
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) || !math.IsNaN(s.Mean()) || !math.IsNaN(s.Median()) {
		t.Error("empty stats should be NaN")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Observe(v)
	}
	if s.N() != 5 {
		t.Errorf("n = %d", s.N())
	}
	if s.Min() != 1 || s.Max() != 5 || s.Mean() != 3 || s.Median() != 3 {
		t.Errorf("stats = min %v max %v mean %v median %v", s.Min(), s.Max(), s.Mean(), s.Median())
	}
	s.Observe(6)
	if s.Median() != 3.5 {
		t.Errorf("even median = %v, want 3.5", s.Median())
	}
	s.Observe(math.NaN()) // ignored
	if s.N() != 6 {
		t.Error("NaN should be ignored")
	}
}

func TestRunningStatsMatchesSort(t *testing.T) {
	// Property: running median equals the exact sorted median.
	f := func(seed int64, nSeed uint8) bool {
		n := int(nSeed%50) + 1
		r := rand.New(rand.NewSource(seed))
		s := NewRunningStats()
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.NormFloat64() * 100
			s.Observe(vals[i])
		}
		sort.Float64s(vals)
		var want float64
		if n%2 == 1 {
			want = vals[n/2]
		} else {
			want = (vals[n/2-1] + vals[n/2]) / 2
		}
		return math.Abs(s.Median()-want) < 1e-9 &&
			s.Min() == vals[0] && s.Max() == vals[n-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func mkRegions() []Region {
	sq := func(id string, minLon, minLat, maxLon, maxLat float64) Region {
		return Region{ID: id, Geom: geo.MustPolygon([]geo.Point{
			geo.Pt(minLon, minLat), geo.Pt(maxLon, minLat),
			geo.Pt(maxLon, maxLat), geo.Pt(minLon, maxLat),
		})}
	}
	return []Region{
		sq("natura-1", 23.0, 37.0, 24.0, 38.0),
		sq("natura-2", 23.5, 37.5, 24.5, 38.5), // overlaps natura-1
		sq("fishing-1", 26.0, 36.0, 27.0, 37.0),
	}
}

func rep(id string, sec int, lon, lat float64) mobility.Report {
	return mobility.Report{ID: id, Time: t0.Add(time.Duration(sec) * time.Second),
		Pos: geo.Pt(lon, lat), SpeedKn: 10, Heading: 90}
}

func TestAreaMonitorEntryExit(t *testing.T) {
	m := NewAreaMonitor(mkRegions(), 32)
	// Outside everything.
	if evs := m.Update(rep("v1", 0, 20, 35)); len(evs) != 0 {
		t.Errorf("no events expected, got %v", evs)
	}
	// Enter natura-1 only.
	evs := m.Update(rep("v1", 10, 23.2, 37.2))
	if len(evs) != 1 || evs[0].Type != Entry || evs[0].AreaID != "natura-1" {
		t.Fatalf("events = %v", evs)
	}
	// Move into the overlap zone: enter natura-2, stay in natura-1.
	evs = m.Update(rep("v1", 20, 23.7, 37.7))
	if len(evs) != 1 || evs[0].AreaID != "natura-2" || evs[0].Type != Entry {
		t.Fatalf("overlap events = %v", evs)
	}
	if got := m.Inside("v1"); len(got) != 2 {
		t.Errorf("inside = %v", got)
	}
	// Leave both.
	evs = m.Update(rep("v1", 30, 20, 35))
	if len(evs) != 2 || evs[0].Type != Exit || evs[1].Type != Exit {
		t.Fatalf("exit events = %v", evs)
	}
	if got := m.Inside("v1"); len(got) != 0 {
		t.Errorf("should be inside nothing: %v", got)
	}
}

func TestAreaMonitorIndependentMovers(t *testing.T) {
	m := NewAreaMonitor(mkRegions(), 32)
	m.Update(rep("v1", 0, 23.2, 37.2))
	m.Update(rep("v2", 0, 26.5, 36.5))
	if got := m.Inside("v1"); len(got) != 1 || got[0] != "natura-1" {
		t.Errorf("v1 inside = %v", got)
	}
	if got := m.Inside("v2"); len(got) != 1 || got[0] != "fishing-1" {
		t.Errorf("v2 inside = %v", got)
	}
}

func TestAreaMonitorEmptyRegions(t *testing.T) {
	m := NewAreaMonitor(nil, 32)
	if evs := m.Update(rep("v1", 0, 23, 37)); evs != nil {
		t.Errorf("no regions: events = %v", evs)
	}
}

func TestAreaMonitorGridConsistency(t *testing.T) {
	// Property: the grid-accelerated result matches brute force.
	regions := mkRegions()
	m := NewAreaMonitor(regions, 16)
	f := func(lonSeed, latSeed float64) bool {
		p := geo.Pt(20+math.Mod(math.Abs(lonSeed), 8), 35+math.Mod(math.Abs(latSeed), 4))
		got := m.regionsAt(p)
		for ri, rg := range regions {
			want := rg.Geom.Contains(p)
			if got[ri] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTrajectoryProfile(t *testing.T) {
	p := NewTrajectoryProfile("v1")
	// Speed ramps 10 → 20 knots over 10 steps of 10s.
	for i := 0; i <= 10; i++ {
		r := rep("v1", i*10, 23.0+float64(i)*0.01, 37.0)
		r.SpeedKn = 10 + float64(i)
		p.Observe(r)
	}
	if p.Speed.Min() != 10 || p.Speed.Max() != 20 {
		t.Errorf("speed range [%v, %v]", p.Speed.Min(), p.Speed.Max())
	}
	// Acceleration: 1 knot per 10s = 0.0514 m/s².
	wantAccel := 1 * mobility.KnotsToMS / 10
	if math.Abs(p.Accel.Mean()-wantAccel) > 1e-9 {
		t.Errorf("accel mean = %v, want %v", p.Accel.Mean(), wantAccel)
	}
	if p.Accel.N() != 10 {
		t.Errorf("accel n = %d, want 10", p.Accel.N())
	}
}

func TestProfiler(t *testing.T) {
	pf := NewProfiler()
	pf.Observe(rep("b", 0, 23, 37))
	pf.Observe(rep("a", 0, 23, 37))
	pf.Observe(rep("a", 10, 23.01, 37))
	ids := pf.MoverIDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("mover ids = %v", ids)
	}
	if pf.Profile("a").Speed.N() != 2 {
		t.Error("a should have 2 speed samples")
	}
	if pf.Profile("zz") != nil {
		t.Error("unknown mover should be nil")
	}
}
