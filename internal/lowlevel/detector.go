package lowlevel

import (
	"sort"
	"time"

	"datacron/internal/geo"
	"datacron/internal/mobility"
)

// Region is a monitored geographical zone for entry/exit detection.
type Region struct {
	ID   string
	Geom *geo.Polygon
}

// AreaEventType distinguishes entries from exits.
type AreaEventType int

const (
	Entry AreaEventType = iota
	Exit
)

func (t AreaEventType) String() string {
	if t == Entry {
		return "entry"
	}
	return "exit"
}

// AreaEvent records a mover crossing a monitored region boundary.
type AreaEvent struct {
	MoverID string
	AreaID  string
	Type    AreaEventType
	Time    time.Time
	Pos     geo.Point
}

// AreaMonitor annotates a position stream with entry/exit events. A spatial
// grid over the monitored regions keeps each update sub-linear in the number
// of regions.
type AreaMonitor struct {
	regions []Region
	grid    *geo.Grid
	cells   map[int][]int           // cell index -> region indices with bbox overlap
	inside  map[string]map[int]bool // mover -> region indices currently inside
}

// NewAreaMonitor indexes the regions for streaming lookups. gridN controls
// the index resolution (gridN×gridN cells over the regions' joint extent).
func NewAreaMonitor(regions []Region, gridN int) *AreaMonitor {
	if gridN < 1 {
		gridN = 64
	}
	extent := geo.EmptyRect()
	for _, rg := range regions {
		extent = extent.ExtendRect(rg.Geom.Bounds())
	}
	m := &AreaMonitor{
		regions: regions,
		cells:   make(map[int][]int),
		inside:  make(map[string]map[int]bool),
	}
	if extent.IsEmpty() {
		return m
	}
	m.grid = geo.NewGrid(extent, gridN, gridN)
	for ri, rg := range regions {
		for _, c := range m.grid.CoveringCells(rg.Geom.Bounds()) {
			m.cells[c] = append(m.cells[c], ri)
		}
	}
	return m
}

// Update processes one report and returns the entry/exit events it causes.
// Events are ordered by area ID for determinism.
func (m *AreaMonitor) Update(r mobility.Report) []AreaEvent {
	current := m.regionsAt(r.Pos)
	prev := m.inside[r.ID]
	// out stays nil on purpose: boundary crossings are rare relative to the
	// report rate, and pre-sizing would allocate on every update.
	var out []AreaEvent
	for ri := range current {
		if !prev[ri] {
			//lint:ignore hotalloc nil-until-first-event result slice; crossings are rare
			out = append(out, AreaEvent{
				MoverID: r.ID, AreaID: m.regions[ri].ID, Type: Entry, Time: r.Time, Pos: r.Pos,
			})
		}
	}
	for ri := range prev {
		if !current[ri] {
			//lint:ignore hotalloc nil-until-first-event result slice; crossings are rare
			out = append(out, AreaEvent{
				MoverID: r.ID, AreaID: m.regions[ri].ID, Type: Exit, Time: r.Time, Pos: r.Pos,
			})
		}
	}
	if len(current) == 0 {
		delete(m.inside, r.ID)
	} else {
		m.inside[r.ID] = current
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].AreaID < out[j].AreaID
	})
	return out
}

// Inside reports the region IDs the mover is currently inside.
func (m *AreaMonitor) Inside(moverID string) []string {
	var out []string
	for ri := range m.inside[moverID] {
		out = append(out, m.regions[ri].ID)
	}
	sort.Strings(out)
	return out
}

// regionsAt returns the set of region indices containing p.
func (m *AreaMonitor) regionsAt(p geo.Point) map[int]bool {
	if m.grid == nil {
		return nil
	}
	cell, ok := m.grid.CellIndex(p)
	if !ok {
		return nil
	}
	var set map[int]bool
	for _, ri := range m.cells[cell] {
		if m.regions[ri].Geom.Contains(p) {
			if set == nil {
				set = make(map[int]bool)
			}
			set[ri] = true
		}
	}
	return set
}

// TrajectoryProfile aggregates the paper's per-trajectory in-situ metadata:
// running statistics of speed and acceleration, used downstream for data
// quality assessment.
type TrajectoryProfile struct {
	MoverID string
	Speed   *RunningStats // knots
	Accel   *RunningStats // m/s²
	last    mobility.Report
	hasLast bool
}

// NewTrajectoryProfile returns an empty profile for a mover.
func NewTrajectoryProfile(moverID string) *TrajectoryProfile {
	return &TrajectoryProfile{
		MoverID: moverID,
		Speed:   NewRunningStats(),
		Accel:   NewRunningStats(),
	}
}

// Observe folds one report into the profile. Acceleration is derived from
// consecutive speed-over-ground samples.
func (p *TrajectoryProfile) Observe(r mobility.Report) {
	p.Speed.Observe(r.SpeedKn)
	if p.hasLast {
		dt := r.Time.Sub(p.last.Time).Seconds()
		if dt > 0 {
			accel := (r.SpeedMS() - p.last.SpeedMS()) / dt
			p.Accel.Observe(accel)
		}
	}
	p.last = r
	p.hasLast = true
}

// Profiler maintains TrajectoryProfiles for every mover on a stream.
type Profiler struct {
	profiles map[string]*TrajectoryProfile
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{profiles: make(map[string]*TrajectoryProfile)}
}

// Reset discards every profile, returning the profiler to its initial
// state. Crash recovery uses it when no checkpoint exists to restore from.
func (pf *Profiler) Reset() {
	pf.profiles = make(map[string]*TrajectoryProfile)
}

// Observe folds a report into its mover's profile.
func (pf *Profiler) Observe(r mobility.Report) {
	p, ok := pf.profiles[r.ID]
	if !ok {
		p = NewTrajectoryProfile(r.ID)
		pf.profiles[r.ID] = p
	}
	p.Observe(r)
}

// Profile returns a mover's profile, or nil if unseen.
func (pf *Profiler) Profile(moverID string) *TrajectoryProfile {
	return pf.profiles[moverID]
}

// MoverIDs returns the sorted IDs with profiles.
func (pf *Profiler) MoverIDs() []string {
	out := make([]string, 0, len(pf.profiles))
	for id := range pf.profiles {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
