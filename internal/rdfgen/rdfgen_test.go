package rdfgen

import (
	"strings"
	"sync"
	"testing"
	"time"

	"datacron/internal/geo"
	"datacron/internal/mobility"
	"datacron/internal/ontology"
	"datacron/internal/rdf"
	"datacron/internal/synopses"
)

var t0 = time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC)

func TestConnectorFilterAndCompute(t *testing.T) {
	src := NewSliceSource([]Record{
		{"mmsi": "a", "speed": 12.0},
		{"mmsi": "", "speed": 9.0}, // filtered: empty id
		{"mmsi": "b", "speed": 15.0},
	})
	c := NewConnector(src).
		Filter(func(r Record) bool { s, _ := r["mmsi"].(string); return s != "" }).
		Compute("speed_ms", func(r Record) any {
			if v, ok := r["speed"].(float64); ok {
				return v * 0.514444
			}
			return nil
		})
	var got []Record
	for {
		rec, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, rec)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d, want 2", len(got))
	}
	if got[0]["speed_ms"].(float64) < 6 || got[0]["speed_ms"].(float64) > 7 {
		t.Errorf("computed field = %v", got[0]["speed_ms"])
	}
}

func TestConnectorDoesNotMutateSource(t *testing.T) {
	rec := Record{"x": 1}
	c := NewConnector(NewSliceSource([]Record{rec})).
		Compute("y", func(Record) any { return 2 })
	out, _ := c.Next()
	if out["y"] != 2 {
		t.Error("computed field missing")
	}
	if _, ok := rec["y"]; ok {
		t.Error("source record mutated")
	}
}

func TestGeneratorSkipsUnboundPatterns(t *testing.T) {
	g := NewGenerator(
		[]Binding{
			BindIRI("s", "http://x/%v", "id"),
			BindStr("name", "name"), // sometimes missing
		},
		Template{
			{S: V("s"), P: C(rdf.RDFType), O: C(rdf.IRI("http://x/Thing"))},
			{S: V("s"), P: C(rdf.IRI("http://x/name")), O: V("name")},
		},
	)
	full := g.Generate(Record{"id": "a", "name": "Alpha"})
	if len(full) != 2 {
		t.Errorf("full record triples = %d, want 2", len(full))
	}
	partial := g.Generate(Record{"id": "b"})
	if len(partial) != 1 {
		t.Errorf("partial record triples = %d, want 1 (name pattern skipped)", len(partial))
	}
	empty := g.Generate(Record{})
	if len(empty) != 0 {
		t.Errorf("empty record should yield no triples, got %d", len(empty))
	}
}

func TestBindingTypeMismatchesAreNil(t *testing.T) {
	cases := []struct {
		b   Binding
		rec Record
	}{
		{BindStr("v", "f"), Record{"f": 42}},
		{BindFloat("v", "f"), Record{"f": "oops"}},
		{BindTime("v", "f"), Record{"f": "2016"}},
		{BindWKT("v", "f"), Record{"f": 3.0}},
		{BindIRI("v", "http://x/%v", "f"), Record{}},
	}
	for i, c := range cases {
		if got := c.b.From(c.rec); got != nil {
			t.Errorf("case %d: expected nil, got %v", i, got)
		}
	}
	// Int variants of BindFloat.
	if got := BindFloat("v", "f").From(Record{"f": 7}); got == nil {
		t.Error("int should bind as float")
	}
	if got := BindFloat("v", "f").From(Record{"f": int64(7)}); got == nil {
		t.Error("int64 should bind as float")
	}
}

func TestFuncTermSpec(t *testing.T) {
	g := NewGenerator(
		[]Binding{BindStr("name", "name")},
		Template{
			{
				S: F(func(v Vars) rdf.Term {
					lit, ok := v["name"].(rdf.Literal)
					if !ok {
						return nil
					}
					return rdf.IRI("http://x/" + strings.ToLower(lit.Value))
				}),
				P: C(rdf.RDFType),
				O: C(rdf.IRI("http://x/Thing")),
			},
		},
	)
	out := g.Generate(Record{"name": "Alpha"})
	if len(out) != 1 || out[0].S != rdf.IRI("http://x/alpha") {
		t.Errorf("func spec output = %v", out)
	}
}

func TestCriticalPointGenerator(t *testing.T) {
	cp := synopses.CriticalPoint{
		Report: mobility.Report{
			ID: "mmsi-1", Time: t0, Pos: geo.Pt(23.6, 37.9), SpeedKn: 11.5, Heading: 88,
		},
		Type: synopses.ChangeInHeading,
	}
	g := CriticalPointGenerator()
	triples := g.Generate(CriticalPointRecord(7, cp))
	graph := rdf.NewGraph()
	graph.AddAll(triples)
	node := ontology.NodeIRI("mmsi-1", 7)
	if !graph.Has(rdf.Triple{S: ontology.TrajectoryIRI("mmsi-1"), P: ontology.PropHasNode, O: node}) {
		t.Error("trajectory → node link missing")
	}
	if got := graph.Objects(node, ontology.PropSpeed); len(got) != 1 {
		t.Error("speed literal missing")
	}
	evs := graph.Subjects(ontology.PropOccurs, node)
	if len(evs) != 1 {
		t.Fatalf("event instances = %d", len(evs))
	}
	if got := graph.Objects(evs[0], ontology.PropEventType); len(got) != 1 ||
		got[0].(rdf.Literal).Value != string(synopses.ChangeInHeading) {
		t.Errorf("event type = %v", got)
	}
}

func TestRegionGeneratorWithConnector(t *testing.T) {
	poly := geo.RegularPolygon(geo.Pt(24, 38), 5_000, 6)
	conn := RegionConnector([]Record{RegionRecord("natura-1", "protected", poly)})
	g := RegionGenerator()
	var all []rdf.Triple
	g.Run(conn, func(ts []rdf.Triple) { all = append(all, ts...) })
	graph := rdf.NewGraph()
	graph.AddAll(all)
	region := ontology.RegionIRI("natura-1")
	wkts := graph.Objects(region, ontology.PropAsWKT)
	if len(wkts) != 1 {
		t.Fatalf("wkt objects = %d", len(wkts))
	}
	parsed, err := geo.ParseWKT(wkts[0].(rdf.Literal).Value)
	if err != nil {
		t.Fatalf("WKT should round-trip: %v", err)
	}
	if _, ok := parsed.(*geo.Polygon); !ok {
		t.Error("region geometry should parse as polygon")
	}
}

func TestGeneratorThroughputCounters(t *testing.T) {
	records := make([]Record, 500)
	for i := range records {
		records[i] = Record{"id": i}
	}
	g := NewGenerator(
		[]Binding{BindIRI("s", "http://x/%v", "id")},
		Template{{S: V("s"), P: C(rdf.RDFType), O: C(rdf.IRI("http://x/T"))}},
	)
	g.Run(NewConnector(NewSliceSource(records)), nil)
	recs, trips, elapsed, rate := g.Throughput()
	if recs != 500 || trips != 500 {
		t.Errorf("counters = %d recs, %d triples", recs, trips)
	}
	if elapsed <= 0 || rate <= 0 {
		t.Errorf("elapsed %v rate %v", elapsed, rate)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	records := make([]Record, 1000)
	for i := range records {
		records[i] = Record{"id": i, "v": float64(i) * 1.5}
	}
	mkGen := func() *Generator {
		return NewGenerator(
			[]Binding{
				BindIRI("s", "http://x/%v", "id"),
				BindFloat("v", "v"),
			},
			Template{
				{S: V("s"), P: C(rdf.RDFType), O: C(rdf.IRI("http://x/T"))},
				{S: V("s"), P: C(rdf.IRI("http://x/v")), O: V("v")},
			},
		)
	}
	seq := rdf.NewGraph()
	mkGen().Run(NewConnector(NewSliceSource(records)), func(ts []rdf.Triple) { seq.AddAll(ts) })

	par := rdf.NewGraph()
	var mu sync.Mutex
	mkGen().RunParallel(NewConnector(NewSliceSource(records)), 8, func(ts []rdf.Triple) {
		mu.Lock()
		par.AddAll(ts)
		mu.Unlock()
	})
	if seq.Len() != par.Len() {
		t.Fatalf("parallel %d != sequential %d", par.Len(), seq.Len())
	}
	for _, tr := range seq.Triples() {
		if !par.Has(tr) {
			t.Fatalf("parallel graph missing %s", tr)
		}
	}
}
