// Package rdfgen implements the generic RDF generation framework of Section
// 4.2.3: data connectors that clean, filter and derive values from source
// records, and triple generators that convert each record into triples by
// instantiating a graph template over a variable vector. The same machinery
// is reused for every (streaming or archival) source, needs no underlying
// SPARQL engine, and is embarrassingly parallel across records.
package rdfgen

import (
	"fmt"
	"sync"
	"time"

	"datacron/internal/rdf"
)

// Record is a raw source record: named fields of arbitrary value.
type Record map[string]any

// Source yields records one at a time; ok=false signals exhaustion.
type Source interface {
	Next() (Record, bool)
}

// SliceSource replays a fixed record slice.
type SliceSource struct {
	records []Record
	pos     int
}

// NewSliceSource wraps records in a Source.
func NewSliceSource(records []Record) *SliceSource {
	return &SliceSource{records: records}
}

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.pos >= len(s.records) {
		return nil, false
	}
	r := s.records[s.pos]
	s.pos++
	return r, true
}

// Connector is the framework's data connector: it pulls records from a
// source, applies basic cleaning filters, and computes derived fields (e.g.
// extracting a WKT string from a raw geometry) before triple generation.
type Connector struct {
	src      Source
	filters  []func(Record) bool
	computes []compute
}

type compute struct {
	field string
	fn    func(Record) any
}

// NewConnector wraps a source.
func NewConnector(src Source) *Connector {
	return &Connector{src: src}
}

// Filter adds a predicate; records failing any predicate are dropped.
func (c *Connector) Filter(pred func(Record) bool) *Connector {
	c.filters = append(c.filters, pred)
	return c
}

// Compute adds a derived field evaluated on each record (after filters, in
// registration order). A nil result leaves the record without the field.
func (c *Connector) Compute(field string, fn func(Record) any) *Connector {
	c.computes = append(c.computes, compute{field: field, fn: fn})
	return c
}

// Next returns the next record that passes all filters, with computed
// fields added. It copies the record so sources are never mutated.
func (c *Connector) Next() (Record, bool) {
	for {
		rec, ok := c.src.Next()
		if !ok {
			return nil, false
		}
		pass := true
		for _, f := range c.filters {
			if !f(rec) {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		out := make(Record, len(rec)+len(c.computes))
		for k, v := range rec {
			out[k] = v
		}
		for _, cp := range c.computes {
			if v := cp.fn(out); v != nil {
				out[cp.field] = v
			}
		}
		return out, true
	}
}

// Vars is the variable vector of one record: variable name -> RDF term.
// Unbound variables are absent.
type Vars map[string]rdf.Term

// Binding populates one variable of the vector from a record. Returning a
// nil Term leaves the variable unbound.
type Binding struct {
	Var  string
	From func(Record) rdf.Term
}

// Field bindings: each returns nil for missing or mistyped fields, so that
// patterns referencing the variable are skipped rather than corrupted.

// BindStr binds a string field as a plain literal.
func BindStr(v, field string) Binding {
	return Binding{Var: v, From: func(r Record) rdf.Term {
		if s, ok := r[field].(string); ok {
			return rdf.Str(s)
		}
		return nil
	}}
}

// BindFloat binds a numeric field as an xsd:double literal.
func BindFloat(v, field string) Binding {
	return Binding{Var: v, From: func(r Record) rdf.Term {
		switch x := r[field].(type) {
		case float64:
			return rdf.Float(x)
		case int:
			return rdf.Float(float64(x))
		case int64:
			return rdf.Float(float64(x))
		default:
			return nil
		}
	}}
}

// BindTime binds a time.Time field as an xsd:dateTime literal.
func BindTime(v, field string) Binding {
	return Binding{Var: v, From: func(r Record) rdf.Term {
		if t, ok := r[field].(time.Time); ok {
			return rdf.Time(t)
		}
		return nil
	}}
}

// BindWKT binds a string field as a geosparql wktLiteral.
func BindWKT(v, field string) Binding {
	return Binding{Var: v, From: func(r Record) rdf.Term {
		if s, ok := r[field].(string); ok {
			return rdf.WKT(s)
		}
		return nil
	}}
}

// BindIRI binds an IRI minted by formatting fields into a pattern, e.g.
// BindIRI("node", "http://…/node/%v/%v", "id", "seq").
func BindIRI(v, format string, fields ...string) Binding {
	return Binding{Var: v, From: func(r Record) rdf.Term {
		args := make([]any, len(fields))
		for i, f := range fields {
			x, ok := r[f]
			if !ok {
				return nil
			}
			args[i] = x
		}
		return rdf.IRI(fmt.Sprintf(format, args...))
	}}
}

// BindFunc binds an arbitrary computed term.
func BindFunc(v string, fn func(Record) rdf.Term) Binding {
	return Binding{Var: v, From: fn}
}

// TermSpec is one slot of a triple pattern: a constant term, a variable
// reference, or a function of the variable vector.
type TermSpec struct {
	konst rdf.Term
	v     string
	fn    func(Vars) rdf.Term
}

// C makes a constant TermSpec.
func C(t rdf.Term) TermSpec { return TermSpec{konst: t} }

// V makes a variable-reference TermSpec.
func V(name string) TermSpec { return TermSpec{v: name} }

// F makes a function TermSpec evaluated over the variable vector.
func F(fn func(Vars) rdf.Term) TermSpec { return TermSpec{fn: fn} }

// resolve returns the term for this slot, or nil when unresolvable.
func (ts TermSpec) resolve(vars Vars) rdf.Term {
	switch {
	case ts.konst != nil:
		return ts.konst
	case ts.v != "":
		return vars[ts.v]
	case ts.fn != nil:
		return ts.fn(vars)
	default:
		return nil
	}
}

// TriplePattern is one template triple.
type TriplePattern struct {
	S, P, O TermSpec
}

// Template is a graph template: the triple patterns every record instantiates.
type Template []TriplePattern

// Generator converts records into triples: the framework's triple generator.
type Generator struct {
	bindings []Binding
	template Template

	mu      sync.Mutex
	records int64
	triples int64
	elapsed time.Duration
}

// NewGenerator builds a triple generator from bindings and a template.
func NewGenerator(bindings []Binding, template Template) *Generator {
	return &Generator{bindings: bindings, template: template}
}

// Generate instantiates the template for one record. Patterns whose subject,
// predicate or object is unresolvable are skipped silently — this is what
// lets one template serve heterogeneous records.
func (g *Generator) Generate(rec Record) []rdf.Triple {
	vars := make(Vars, len(g.bindings))
	for _, b := range g.bindings {
		if t := b.From(rec); t != nil {
			vars[b.Var] = t
		}
	}
	out := make([]rdf.Triple, 0, len(g.template))
	for _, tp := range g.template {
		s := tp.S.resolve(vars)
		p := tp.P.resolve(vars)
		o := tp.O.resolve(vars)
		if s == nil || p == nil || o == nil {
			continue
		}
		out = append(out, rdf.Triple{S: s, P: p, O: o})
	}
	return out
}

// Run drains a connector through the generator, invoking sink for each
// record's triples, and accumulates throughput counters.
func (g *Generator) Run(c *Connector, sink func([]rdf.Triple)) {
	start := time.Now()
	var recs, trips int64
	for {
		rec, ok := c.Next()
		if !ok {
			break
		}
		ts := g.Generate(rec)
		recs++
		trips += int64(len(ts))
		if sink != nil {
			sink(ts)
		}
	}
	g.mu.Lock()
	g.records += recs
	g.triples += trips
	g.elapsed += time.Since(start)
	g.mu.Unlock()
}

// RunParallel processes a connector with n workers, preserving no particular
// order (the knowledge graph is a set). The connector is drained by a single
// goroutine; generation and sinking are parallel. sink must be safe for
// concurrent use.
func (g *Generator) RunParallel(c *Connector, n int, sink func([]rdf.Triple)) {
	if n < 1 {
		n = 1
	}
	start := time.Now()
	ch := make(chan Record, n*4)
	var wg sync.WaitGroup
	var recs, trips int64
	var cnt sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var myRecs, myTrips int64
			for rec := range ch {
				ts := g.Generate(rec)
				myRecs++
				myTrips += int64(len(ts))
				if sink != nil {
					sink(ts)
				}
			}
			cnt.Lock()
			recs += myRecs
			trips += myTrips
			cnt.Unlock()
		}()
	}
	for {
		rec, ok := c.Next()
		if !ok {
			break
		}
		ch <- rec
	}
	close(ch)
	wg.Wait()
	g.mu.Lock()
	g.records += recs
	g.triples += trips
	g.elapsed += time.Since(start)
	g.mu.Unlock()
}

// Throughput reports the accumulated counters: records and triples
// generated, wall time, and records/second.
func (g *Generator) Throughput() (records, triples int64, elapsed time.Duration, recPerSec float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	records, triples, elapsed = g.records, g.triples, g.elapsed
	if elapsed > 0 {
		recPerSec = float64(records) / elapsed.Seconds()
	}
	return records, triples, elapsed, recPerSec
}
