package rdfgen

import (
	"datacron/internal/geo"
	"datacron/internal/mobility"
	"datacron/internal/ontology"
	"datacron/internal/rdf"
	"datacron/internal/synopses"
)

// This file instantiates the generic framework for the concrete datAcron
// sources: critical-point streams, region shapefiles and port registers.
// Each instantiation is a (record adapter, bindings, template) triple — the
// pattern every new source follows.

// CriticalPointRecord adapts a synopsis critical point to a Record.
func CriticalPointRecord(seq int, cp synopses.CriticalPoint) Record {
	return Record{
		"id":      cp.ID,
		"seq":     seq,
		"time":    cp.Time,
		"wkt":     cp.Pos.WKT(),
		"speed":   cp.SpeedKn,
		"heading": cp.Heading,
		"alt":     cp.AltFt,
		"type":    string(cp.Type),
	}
}

// CriticalPointGenerator returns the generator lifting critical points into
// the datAcron ontology (semantic nodes attached to trajectories).
func CriticalPointGenerator() *Generator {
	bindings := []Binding{
		BindIRI("traj", string(rdf.NSDatAcron)+"trajectory/%v", "id"),
		BindIRI("mover", string(rdf.NSDatAcron)+"mover/%v", "id"),
		BindIRI("node", string(rdf.NSDatAcron)+"node/%v/%v", "id", "seq"),
		BindIRI("event", string(rdf.NSDatAcron)+"event/%v/%v", "id", "seq"),
		BindTime("t", "time"),
		BindWKT("wkt", "wkt"),
		BindFloat("speed", "speed"),
		BindFloat("heading", "heading"),
		BindStr("etype", "type"),
	}
	template := Template{
		{S: V("traj"), P: C(rdf.RDFType), O: C(ontology.ClassTrajectory)},
		{S: V("traj"), P: C(ontology.PropOfMover), O: V("mover")},
		{S: V("traj"), P: C(ontology.PropHasNode), O: V("node")},
		{S: V("node"), P: C(rdf.RDFType), O: C(ontology.ClassSemanticNode)},
		{S: V("node"), P: C(ontology.PropAtTime), O: V("t")},
		{S: V("node"), P: C(ontology.PropAsWKT), O: V("wkt")},
		{S: V("node"), P: C(ontology.PropSpeed), O: V("speed")},
		{S: V("node"), P: C(ontology.PropHeading), O: V("heading")},
		{S: V("event"), P: C(rdf.RDFType), O: C(ontology.ClassEvent)},
		{S: V("event"), P: C(ontology.PropEventType), O: V("etype")},
		{S: V("event"), P: C(ontology.PropOccurs), O: V("node")},
	}
	return NewGenerator(bindings, template)
}

// RegionRecord adapts a named polygon to a Record, mimicking a shapefile
// row whose geometry is extracted as WKT by the connector.
func RegionRecord(id, kind string, poly *geo.Polygon) Record {
	return Record{"id": id, "kind": kind, "geom": poly}
}

// RegionGenerator returns the generator for geographic regions. It expects
// the connector to have computed the "wkt" field from the raw geometry,
// demonstrating the connector's value-generation role.
func RegionGenerator() *Generator {
	bindings := []Binding{
		BindIRI("region", string(rdf.NSDatAcron)+"region/%v", "id"),
		BindStr("kind", "kind"),
		BindStr("name", "id"),
		BindWKT("wkt", "wkt"),
	}
	template := Template{
		{S: V("region"), P: C(rdf.RDFType), O: C(ontology.ClassRegion)},
		{S: V("region"), P: C(ontology.PropEventType), O: V("kind")},
		{S: V("region"), P: C(ontology.PropHasName), O: V("name")},
		{S: V("region"), P: C(ontology.PropAsWKT), O: V("wkt")},
	}
	return NewGenerator(bindings, template)
}

// RegionConnector wraps region records with the WKT-extraction compute step.
func RegionConnector(records []Record) *Connector {
	return NewConnector(NewSliceSource(records)).
		Compute("wkt", func(r Record) any {
			if p, ok := r["geom"].(*geo.Polygon); ok {
				return p.WKT()
			}
			return nil
		})
}

// PortRecord adapts a port register row.
func PortRecord(id, name string, pos geo.Point) Record {
	return Record{"id": id, "name": name, "wkt": pos.WKT()}
}

// PortGenerator returns the generator for port registers.
func PortGenerator() *Generator {
	bindings := []Binding{
		BindIRI("port", string(rdf.NSDatAcron)+"port/%v", "id"),
		BindStr("name", "name"),
		BindWKT("wkt", "wkt"),
	}
	template := Template{
		{S: V("port"), P: C(rdf.RDFType), O: C(ontology.ClassPort)},
		{S: V("port"), P: C(ontology.PropHasName), O: V("name")},
		{S: V("port"), P: C(ontology.PropAsWKT), O: V("wkt")},
	}
	return NewGenerator(bindings, template)
}

// ReportRecord adapts a raw surveillance report (used when lifting the full
// stream rather than the synopsis).
func ReportRecord(seq int, r mobility.Report) Record {
	return Record{
		"id":      r.ID,
		"seq":     seq,
		"time":    r.Time,
		"wkt":     r.Pos.WKT(),
		"speed":   r.SpeedKn,
		"heading": r.Heading,
		"alt":     r.AltFt,
	}
}
