package obs

// Sampler is a deterministic head-based record sampler: of every Every
// admissions it admits exactly one (the first), counting from zero. The
// decision depends only on the admission ordinal — never on time or
// randomness — so a crash-recovery replay that re-admits the same record
// sequence reproduces the same sampling decisions. It is driven from the
// pipeline's single-threaded run loop and is NOT safe for concurrent use;
// a nil *Sampler never admits.
type Sampler struct {
	every int
	n     int64
}

// NewSampler returns a sampler admitting one in every n admissions.
// n <= 0 disables sampling (nil is returned; all methods are nil-safe).
func NewSampler(n int) *Sampler {
	if n <= 0 {
		return nil
	}
	return &Sampler{every: n}
}

// Admit consumes one admission ordinal and reports whether it is sampled.
func (s *Sampler) Admit() bool {
	if s == nil {
		return false
	}
	hit := s.n%int64(s.every) == 0
	s.n++
	return hit
}

// Seen returns the number of admissions consumed since creation or Reset.
func (s *Sampler) Seen() int64 {
	if s == nil {
		return 0
	}
	return s.n
}

// Reset rewinds the ordinal to zero. Crash recovery calls it next to
// Registry.Reset so the replayed record sequence sees the same decisions
// as the original run.
func (s *Sampler) Reset() {
	if s == nil {
		return
	}
	s.n = 0
}
