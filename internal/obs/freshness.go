package obs

import "time"

// Freshness accounting: every instrumented stage records how stale a
// record is — processing time minus the record's event time — into a
// per-stage lag histogram ("lag.<stage>.seconds") and raises the stage's
// freshness watermark gauge ("lag.<stage>.max_seconds", see Gauge.Max and
// the Merge watermark rule). The pair answers the time-critical question
// the wall-clock stage timings cannot: how old was the position report by
// the time this stage acted on it, and which stage ate the budget.

// EventLag returns now − event in seconds, clamped at zero: a record
// processed at or before its own event time (simulated clocks, skewed
// sources) counts as perfectly fresh rather than negatively lagged, which
// would corrupt histogram sums and quantiles.
func EventLag(now, event time.Time) float64 {
	lag := now.Sub(event).Seconds()
	if lag < 0 {
		return 0
	}
	return lag
}

// LagStage bundles the two freshness handles of one stage. The zero value
// and handles from a nil Registry are valid no-ops.
type LagStage struct {
	hist *Histogram
	mark *Gauge
}

// NewLagStage resolves the "lag.<stage>.seconds" histogram and the
// "lag.<stage>.max_seconds" watermark gauge for the named stage. Resolve
// once at instrumentation time; Observe is lock-free.
func NewLagStage(reg *Registry, stage string) LagStage {
	return LagStage{
		hist: reg.Histogram("lag." + stage + ".seconds"),
		mark: reg.Gauge("lag." + stage + ".max_seconds"),
	}
}

// Observe records one event-time lag observation (clamped at zero) and
// raises the stage watermark.
func (l LagStage) Observe(now, event time.Time) {
	lag := EventLag(now, event)
	l.hist.Observe(lag)
	l.mark.Max(lag)
}
