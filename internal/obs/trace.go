package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records lightweight spans: named, timed stages of the pipeline
// (poll, process, checkpoint, ...). Each completed span feeds a per-name
// duration histogram and counter in the registry — "trace.<name>.seconds",
// "trace.<name>.count" — and is kept in a bounded ring of recent spans for
// dumps (the admin server's /traces endpoint). Spans carry a tracer-unique
// ID so log lines tagged with it correlate with the dumped records, and an
// optional parent-span ID plus key/value attrs so a sampled record yields a
// span *tree* (ingest→submit→decode→synopses→flp→cer→emit) instead of
// disjoint timings. A nil *Tracer is a valid no-op tracer.
type Tracer struct {
	reg  *Registry
	seq  atomic.Int64
	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
}

// Attr is one key/value annotation on a span (mover ID, partition, shard).
type Attr struct {
	Key   string
	Value string
}

// SpanRecord is one completed span. Parent is 0 for root spans, otherwise
// the ID of the enclosing span (which completed — and entered the ring —
// after its children, since End propagates leaf-to-root).
type SpanRecord struct {
	ID       int64
	Parent   int64
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// NewTracer returns a tracer recording into reg and retaining the last
// ringSize completed spans (minimum 16).
func NewTracer(reg *Registry, ringSize int) *Tracer {
	if ringSize < 16 {
		ringSize = 16
	}
	return &Tracer{reg: reg, ring: make([]SpanRecord, ringSize)}
}

// Span is an in-flight stage timing; call End exactly once. The zero Span
// (from a nil Tracer, or any Child of the zero Span) ends as a no-op, so
// instrumented code paths can thread spans unconditionally and pay only a
// nil check for unsampled records.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
	attrs  []Attr
}

// Start opens a root span. Time comes from the registry's injected Clock.
func (t *Tracer) Start(name string) Span {
	return t.StartSpan(name)
}

// StartSpan opens a root span annotated with attrs.
func (t *Tracer) StartSpan(name string, attrs ...Attr) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, id: t.seq.Add(1), name: name, start: t.reg.Clock().Now(), attrs: attrs}
}

// Child opens a sub-span parented to s, starting now. On the zero Span it
// returns another zero Span, so whole call trees no-op when the root was
// not sampled.
func (s Span) Child(name string, attrs ...Attr) Span {
	if s.t == nil {
		return Span{}
	}
	return Span{t: s.t, id: s.t.seq.Add(1), parent: s.id, name: name, start: s.t.reg.Clock().Now(), attrs: attrs}
}

// ChildAt opens a sub-span parented to s with an explicit start instant —
// used for dwell spans that began before the code observed them, e.g. the
// broker residency of a record measured from its event time.
func (s Span) ChildAt(name string, at time.Time, attrs ...Attr) Span {
	if s.t == nil {
		return Span{}
	}
	return Span{t: s.t, id: s.t.seq.Add(1), parent: s.id, name: name, start: at, attrs: attrs}
}

// ID returns the span's tracer-unique identifier (0 for the no-op span).
// Log lines that carry it under the "span" attr correlate with the
// tracer's Recent dump.
func (s Span) ID() int64 { return s.id }

// End closes the span, recording its duration.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := s.t.reg.Clock().Now().Sub(s.start)
	s.t.reg.Histogram("trace." + s.name + ".seconds").ObserveDuration(d)
	s.t.reg.Counter("trace." + s.name + ".count").Inc()
	s.t.mu.Lock()
	s.t.ring[s.t.next] = SpanRecord{ID: s.id, Parent: s.parent, Name: s.name, Start: s.start, Duration: d, Attrs: s.attrs}
	s.t.next = (s.t.next + 1) % len(s.t.ring)
	if s.t.next == 0 {
		s.t.full = true
	}
	s.t.mu.Unlock()
}

// Recent returns the retained spans in completion order, oldest first.
// This ordering is a contract: once the ring has wrapped, the slice still
// begins with the oldest surviving span and ends with the most recently
// completed one — consumers (the /traces endpoint, the JSONL export) rely
// on it to reconstruct trees, since a parent always completes after its
// children and therefore appears later in the slice.
func (t *Tracer) Recent() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	if t.full {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}
