package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records lightweight spans: named, timed stages of the pipeline
// (poll, process, checkpoint, ...). Each completed span feeds a per-name
// duration histogram and counter in the registry — "trace.<name>.seconds",
// "trace.<name>.count" — and is kept in a bounded ring of recent spans for
// dumps (the admin server's /traces endpoint). Spans carry a tracer-unique
// ID so log lines tagged with it correlate with the dumped records. A nil
// *Tracer is a valid no-op tracer.
type Tracer struct {
	reg  *Registry
	seq  atomic.Int64
	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
}

// SpanRecord is one completed span.
type SpanRecord struct {
	ID       int64
	Name     string
	Start    time.Time
	Duration time.Duration
}

// NewTracer returns a tracer recording into reg and retaining the last
// ringSize completed spans (minimum 16).
func NewTracer(reg *Registry, ringSize int) *Tracer {
	if ringSize < 16 {
		ringSize = 16
	}
	return &Tracer{reg: reg, ring: make([]SpanRecord, ringSize)}
}

// Span is an in-flight stage timing; call End exactly once. The zero Span
// (from a nil Tracer) ends as a no-op.
type Span struct {
	t     *Tracer
	id    int64
	name  string
	start time.Time
}

// Start opens a span. Time comes from the registry's injected Clock.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, id: t.seq.Add(1), name: name, start: t.reg.Clock().Now()}
}

// ID returns the span's tracer-unique identifier (0 for the no-op span).
// Log lines that carry it under the "span" attr correlate with the
// tracer's Recent dump.
func (s Span) ID() int64 { return s.id }

// End closes the span, recording its duration.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := s.t.reg.Clock().Now().Sub(s.start)
	s.t.reg.Histogram("trace." + s.name + ".seconds").ObserveDuration(d)
	s.t.reg.Counter("trace." + s.name + ".count").Inc()
	s.t.mu.Lock()
	s.t.ring[s.t.next] = SpanRecord{ID: s.id, Name: s.name, Start: s.start, Duration: d}
	s.t.next = (s.t.next + 1) % len(s.t.ring)
	if s.t.next == 0 {
		s.t.full = true
	}
	s.t.mu.Unlock()
}

// Recent returns the retained spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	if t.full {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}
