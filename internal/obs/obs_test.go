package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry(NewManualClock(epoch))
	c := r.Counter("records")
	c.Inc()
	c.Add(9)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	if c2 := r.Counter("records"); c2 != c {
		t.Fatal("same name must resolve to the same counter")
	}

	g := r.Gauge("depth")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metric handles must read as zero")
	}
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	r.Reset() // must not panic
	if _, ok := r.Clock().(WallClock); !ok {
		t.Fatal("nil registry must hand out WallClock")
	}

	var tr *Tracer
	sp := tr.Start("stage")
	sp.End() // no-op
	if tr.Recent() != nil {
		t.Fatal("nil tracer must have no spans")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry(NewManualClock(epoch))
	h := r.Histogram("lat", 1, 2, 4)
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // ignored
	s, ok := r.Snapshot().Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantCounts := []int64{1, 2, 1, 1} // <=1, <=2, <=4, overflow
	for i, want := range wantCounts {
		if s.Counts[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, s.Counts[i], want)
		}
	}
	if got := s.Sum; math.Abs(got-106.5) > 1e-9 {
		t.Fatalf("sum = %v, want 106.5", got)
	}
	if m := s.Mean(); math.Abs(m-21.3) > 1e-9 {
		t.Fatalf("mean = %v, want 21.3", m)
	}
	// p50: rank 2.5 falls in the (1,2] bucket.
	if q := s.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", q)
	}
	// p100 lands in the overflow bucket: reported as the largest bound.
	if q := s.Quantile(1); q != 4 {
		t.Fatalf("p100 = %v, want 4 (largest finite bound)", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %v, want NaN", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	r := NewRegistry(NewManualClock(epoch))
	a := r.Histogram("a", 1, 2)
	b := r.Histogram("b", 1, 2)
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(5)
	snap := r.Snapshot()
	ha, _ := snap.Histogram("a")
	hb, _ := snap.Histogram("b")
	m, err := ha.Merge(hb)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 3 || m.Counts[0] != 1 || m.Counts[1] != 1 || m.Counts[2] != 1 {
		t.Fatalf("merged = %+v", m)
	}
	c := r.Histogram("c", 1, 2, 3)
	c.Observe(1)
	hc, _ := r.Snapshot().Histogram("c")
	if _, err := ha.Merge(hc); err == nil {
		t.Fatal("merging mismatched bounds must fail")
	}
}

func TestSnapshotRatesAndReset(t *testing.T) {
	clk := NewManualClock(epoch)
	r := NewRegistry(clk)
	c := r.Counter("linkdisc.entities")
	c.Add(500)
	clk.Advance(10 * time.Second)
	s := r.Snapshot()
	if s.Elapsed != 10*time.Second {
		t.Fatalf("elapsed = %v", s.Elapsed)
	}
	if rate := s.Rate("linkdisc.entities"); rate != 50 {
		t.Fatalf("rate = %v, want 50/s", rate)
	}

	h := r.Histogram("lat", 1)
	h.Observe(0.5)
	g := r.Gauge("ratio")
	g.Set(0.9)
	r.Reset()
	s = r.Snapshot()
	if s.Counter("linkdisc.entities") != 0 {
		t.Fatal("reset must zero counters")
	}
	if v, _ := s.Gauge("ratio"); v != 0 {
		t.Fatal("reset must zero gauges")
	}
	if hs, _ := s.Histogram("lat"); hs.Count != 0 {
		t.Fatal("reset must zero histograms")
	}
	if s.Elapsed != 0 {
		t.Fatalf("reset must restart the rate window, elapsed = %v", s.Elapsed)
	}
	// Handles resolved before the reset keep working.
	c.Inc()
	if r.Snapshot().Counter("linkdisc.entities") != 1 {
		t.Fatal("pre-reset handle must stay live")
	}
}

func TestSnapshotMerge(t *testing.T) {
	clkA, clkB := NewManualClock(epoch), NewManualClock(epoch)
	a, b := NewRegistry(clkA), NewRegistry(clkB)
	a.Counter("n").Add(3)
	b.Counter("n").Add(4)
	b.Counter("only.b").Add(1)
	a.Gauge("g").Set(1)
	b.Gauge("g").Set(2)
	a.Histogram("h", 1, 2).Observe(0.5)
	b.Histogram("h", 1, 2).Observe(1.5)
	clkB.Advance(5 * time.Second)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counter("n") != 7 || m.Counter("only.b") != 1 {
		t.Fatalf("merged counters wrong: %+v", m.Counters)
	}
	if v, _ := m.Gauge("g"); v != 2 {
		t.Fatalf("merged gauge = %v, want the later registry's 2", v)
	}
	if h, ok := m.Histogram("h"); !ok || h.Count != 2 {
		t.Fatalf("merged histogram = %+v", h)
	}
	if m.Elapsed != 5*time.Second {
		t.Fatalf("merged elapsed = %v", m.Elapsed)
	}
}

func TestWriteText(t *testing.T) {
	clk := NewManualClock(epoch)
	r := NewRegistry(clk)
	r.Counter("synopses.in").Add(100)
	r.Gauge("synopses.compression_ratio").Set(0.87)
	r.Histogram("store.starjoin.seconds", 0.001, 0.01).Observe(0.002)
	clk.Advance(2 * time.Second)
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"synopses.in", "rate=50.0/s", "compression_ratio", "0.8700", "store.starjoin.seconds", "count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestTracerSpans(t *testing.T) {
	clk := NewManualClock(epoch)
	r := NewRegistry(clk)
	tr := NewTracer(r, 16)
	for i := 0; i < 20; i++ {
		sp := tr.Start("poll")
		clk.Advance(time.Millisecond)
		sp.End()
	}
	if got := r.Snapshot().Counter("trace.poll.count"); got != 20 {
		t.Fatalf("span count = %d, want 20", got)
	}
	h, _ := r.Snapshot().Histogram("trace.poll.seconds")
	if h.Count != 20 || math.Abs(h.Sum-0.020) > 1e-9 {
		t.Fatalf("span histogram = count %d sum %v", h.Count, h.Sum)
	}
	recent := tr.Recent()
	if len(recent) != 16 {
		t.Fatalf("ring retained %d spans, want 16", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i].Start.Before(recent[i-1].Start) {
			t.Fatal("recent spans must be ordered oldest first")
		}
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry(nil)
	c := r.Counter("n")
	g := r.Gauge("g")
	h := r.Histogram("h", 1, 10, 100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestRateZeroElapsed(t *testing.T) {
	// A ManualClock that is never advanced yields a zero-length window; the
	// derived rate must be 0 (not NaN or +Inf) because it flows into the
	// Prometheus exposition of obs/export, where non-finite values are
	// invalid output.
	clk := NewManualClock(epoch)
	r := NewRegistry(clk)
	r.Counter("core.records").Add(1234)
	s := r.Snapshot()
	if s.Elapsed != 0 {
		t.Fatalf("elapsed = %v, want 0", s.Elapsed)
	}
	if got := s.Rate("core.records"); got != 0 {
		t.Fatalf("rate over zero window = %v, want 0", got)
	}
	if got := s.Rate("missing"); got != 0 {
		t.Fatalf("rate of missing counter = %v, want 0", got)
	}
	// WriteText must render finite values only.
	var b strings.Builder
	if err := s.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(b.String(), bad) {
			t.Fatalf("WriteText contains %s:\n%s", bad, b.String())
		}
	}
}

func TestSpanIDs(t *testing.T) {
	clk := NewManualClock(epoch)
	r := NewRegistry(clk)
	tr := NewTracer(r, 16)
	a := tr.Start("poll")
	b := tr.Start("process")
	if a.ID() == 0 || b.ID() == 0 || a.ID() == b.ID() {
		t.Fatalf("span IDs must be unique and non-zero, got %d and %d", a.ID(), b.ID())
	}
	b.End()
	a.End()
	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("retained %d spans, want 2", len(recent))
	}
	for _, rec := range recent {
		if rec.ID != a.ID() && rec.ID != b.ID() {
			t.Fatalf("record ID %d matches no started span", rec.ID)
		}
	}
	// The zero Span from a nil tracer has ID 0 and ends as a no-op.
	var nilTr *Tracer
	sp := nilTr.Start("x")
	if sp.ID() != 0 {
		t.Fatalf("nil tracer span ID = %d, want 0", sp.ID())
	}
	sp.End()
}

// TestSnapshotMergeHistogramBuckets covers the satellite contract for
// Registry snapshot merging across shard workers: histograms under
// overlapping names with identical buckets sum element-wise, disjoint names
// both survive, mismatched bucket shapes keep the receiver's data — and the
// merged snapshot never aliases its inputs' bucket slices.
func TestSnapshotMergeHistogramBuckets(t *testing.T) {
	a, b := NewRegistry(NewManualClock(epoch)), NewRegistry(NewManualClock(epoch))

	// Overlapping name, identical bounds.
	a.Histogram("both", 1, 2).Observe(0.5)
	a.Histogram("both", 1, 2).Observe(1.5)
	b.Histogram("both", 1, 2).Observe(5)
	// Disjoint names, one per side.
	a.Histogram("only.a", 10).Observe(3)
	b.Histogram("only.b", 10, 20).Observe(15)
	// Overlapping name, mismatched bucket shapes.
	a.Histogram("mix", 1, 2).Observe(0.5)
	b.Histogram("mix", 1, 2, 3).Observe(2.5)

	sa, sb := a.Snapshot(), b.Snapshot()
	m := sa.Merge(sb)

	if h, ok := m.Histogram("both"); !ok || h.Count != 3 ||
		h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Sum != 7 {
		t.Fatalf("overlapping histogram merged wrong: %+v", h)
	}
	if h, ok := m.Histogram("only.a"); !ok || h.Count != 1 || h.Counts[0] != 1 {
		t.Fatalf("s-only histogram lost: %+v", h)
	}
	if h, ok := m.Histogram("only.b"); !ok || h.Count != 1 || h.Counts[1] != 1 {
		t.Fatalf("o-only histogram lost: %+v", h)
	}
	// Documented fallback: incompatible shapes keep the receiver's data.
	if h, ok := m.Histogram("mix"); !ok || h.Count != 1 || len(h.Bounds) != 2 {
		t.Fatalf("mismatched-bounds histogram should keep the receiver's data: %+v", h)
	}

	// No aliasing: scribbling on every merged bucket slice must leave both
	// input snapshots untouched.
	for i := range m.Histograms {
		for j := range m.Histograms[i].Counts {
			m.Histograms[i].Counts[j] += 1000
		}
	}
	if h, _ := sa.Histogram("both"); h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("merge aliased the receiver's buckets: %+v", h)
	}
	if h, _ := sb.Histogram("only.b"); h.Counts[1] != 1 {
		t.Errorf("merge aliased the argument's buckets: %+v", h)
	}

	// Prefixed views (the per-shard labels) must deep-copy too.
	pre := sb.Prefixed("shard.1.")
	if h, ok := pre.Histogram("shard.1.only.b"); !ok || h.Count != 1 {
		t.Fatalf("prefixed histogram missing: %+v", pre.Histograms)
	}
	for i := range pre.Histograms {
		for j := range pre.Histograms[i].Counts {
			pre.Histograms[i].Counts[j] += 1000
		}
	}
	if h, _ := sb.Histogram("only.b"); h.Counts[1] != 1 {
		t.Errorf("Prefixed aliased the source's buckets: %+v", h)
	}
}
