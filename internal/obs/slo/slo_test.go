package slo

import (
	"testing"
	"time"

	"datacron/internal/health"
	"datacron/internal/obs"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// harness builds a ManualClock-driven registry with one p99 objective over
// lag.predict.seconds: ≤ 100ms per 1m window, overloaded after 2 windows.
func harness() (*obs.ManualClock, *obs.Registry, *Tracker) {
	clk := obs.NewManualClock(epoch)
	reg := obs.NewRegistry(clk)
	tr := NewTracker(reg, Objective{
		Family:    "lag.predict.seconds",
		Threshold: 100 * time.Millisecond,
		Window:    time.Minute,
		Burn:      2,
	})
	return clk, reg, tr
}

func observeLag(reg *obs.Registry, v float64, n int) {
	h := reg.Histogram("lag.predict.seconds")
	for i := 0; i < n; i++ {
		h.Observe(v)
	}
}

func TestDefaults(t *testing.T) {
	o := Objective{Family: "lag.emit.seconds"}.withDefaults()
	if o.Name != "lag.emit.seconds" || o.Quantile != 0.99 || o.Window != time.Minute || o.Burn != 3 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestWindowCloseJudgesOnlyTheWindow(t *testing.T) {
	clk, reg, tr := harness()
	tr.Observe(reg.Snapshot()) // anchor

	observeLag(reg, 0.01, 100) // all fast
	clk.Advance(time.Minute)
	tr.Observe(reg.Snapshot())
	st := tr.Status()[0]
	if st.Windows != 1 || st.Violated || st.Streak != 0 {
		t.Fatalf("fast window: %+v", st)
	}
	if st.Current > 0.1 {
		t.Errorf("current = %v, want under threshold", st.Current)
	}

	// Second window is slow. The judgment must come from the delta — the
	// 100 fast observations of window 1 must not mask it.
	observeLag(reg, 2.0, 50)
	clk.Advance(time.Minute)
	tr.Observe(reg.Snapshot())
	st = tr.Status()[0]
	if st.Windows != 2 || !st.Violated || st.Violations != 1 || st.Streak != 1 {
		t.Fatalf("slow window: %+v", st)
	}
	if st.Current < 0.1 {
		t.Errorf("current = %v, want the slow window's p99", st.Current)
	}
	if st.BudgetBurn != 0.5 {
		t.Errorf("burn = %v, want 0.5", st.BudgetBurn)
	}

	// Published metrics follow.
	s := reg.Snapshot()
	if v, _ := s.Gauge("slo.lag.predict.seconds.violated"); v != 1 {
		t.Errorf("violated gauge = %v, want 1", v)
	}
	if c := s.Counter("slo.lag.predict.seconds.windows"); c != 2 {
		t.Errorf("windows counter = %d, want 2", c)
	}
	if c := s.Counter("slo.lag.predict.seconds.violations"); c != 1 {
		t.Errorf("violations counter = %d, want 1", c)
	}
}

func TestEmptyWindowVacuouslyCompliant(t *testing.T) {
	clk, reg, tr := harness()
	tr.Observe(reg.Snapshot())
	clk.Advance(3 * time.Minute) // three windows pass with no records at all
	tr.Observe(reg.Snapshot())
	st := tr.Status()[0]
	if st.Windows != 3 || st.Violations != 0 || st.Violated || st.Current != 0 {
		t.Fatalf("idle windows: %+v", st)
	}
}

func TestStreakEndsOnCompliantWindow(t *testing.T) {
	clk, reg, tr := harness()
	tr.Observe(reg.Snapshot())
	for i := 0; i < 2; i++ {
		observeLag(reg, 1.0, 20)
		clk.Advance(time.Minute)
		tr.Observe(reg.Snapshot())
	}
	if st := tr.Status()[0]; st.Streak != 2 {
		t.Fatalf("streak = %d, want 2", st.Streak)
	}
	observeLag(reg, 0.01, 20)
	clk.Advance(time.Minute)
	tr.Observe(reg.Snapshot())
	if st := tr.Status()[0]; st.Streak != 0 || st.Violations != 2 {
		t.Fatalf("after recovery: %+v", st)
	}
}

func TestRegistryResetReanchors(t *testing.T) {
	clk, reg, tr := harness()
	tr.Observe(reg.Snapshot())
	observeLag(reg, 2.0, 50)
	clk.Advance(30 * time.Second) // mid-window

	// Crash recovery: the registry resets, counts move backwards.
	reg.Reset()
	tr.Observe(reg.Snapshot())
	if st := tr.Status()[0]; st.Windows != 0 {
		t.Fatalf("re-anchor closed a window: %+v", st)
	}

	// The tracker must keep working from the new anchor: a compliant
	// post-recovery window closes clean.
	observeLag(reg, 0.01, 20)
	clk.Advance(time.Minute)
	tr.Observe(reg.Snapshot())
	if st := tr.Status()[0]; st.Windows != 1 || st.Violated {
		t.Fatalf("post-recovery window: %+v", st)
	}
}

func TestNilTrackerIsInert(t *testing.T) {
	var tr *Tracker
	tr.Observe(obs.Snapshot{})
	if st := tr.Status(); st != nil {
		t.Errorf("nil tracker status = %v, want nil", st)
	}
}

func TestCheckerEscalation(t *testing.T) {
	clk, reg, tr := harness()
	c := NewChecker(tr)
	if c.Name() != "slo" {
		t.Fatalf("name = %q", c.Name())
	}
	// First tick anchors; healthy.
	if res := c.Check(obs.Snapshot{}, reg.Snapshot()); res.Status != health.Healthy {
		t.Fatalf("anchor tick: %+v", res)
	}
	// One violated window: degraded (budget burning).
	observeLag(reg, 1.0, 20)
	clk.Advance(time.Minute)
	if res := c.Check(obs.Snapshot{}, reg.Snapshot()); res.Status != health.Degraded {
		t.Fatalf("one violated window: %+v", res)
	}
	// Second consecutive violated window reaches Burn=2: overloaded.
	observeLag(reg, 1.0, 20)
	clk.Advance(time.Minute)
	if res := c.Check(obs.Snapshot{}, reg.Snapshot()); res.Status != health.Overloaded {
		t.Fatalf("sustained violation: %+v", res)
	}
	// Recovery: a compliant window returns the component to healthy.
	observeLag(reg, 0.01, 20)
	clk.Advance(time.Minute)
	if res := c.Check(obs.Snapshot{}, reg.Snapshot()); res.Status != health.Healthy {
		t.Fatalf("after recovery: %+v", res)
	}
}
