// Package slo evaluates freshness service-level objectives over metric
// snapshots. An Objective states a bound on a quantile of an event-time
// lag histogram over fixed evaluation windows — "p99 prediction lag ≤ 5s
// over 1m windows" — and the Tracker closes a window each time the
// snapshot clock crosses a boundary, judging only the observations made
// *within* that window (the histogram delta against the window-start
// baseline, not the process-lifetime distribution, which would let an old
// good hour mask a bad minute).
//
// The Tracker is snapshot-driven and clock-agnostic: feed it Observe calls
// from any cadence (the health watchdog's tick, a test with a ManualClock)
// and it keeps per-objective violation counters and the error-budget burn
// rate. Checker adapts a Tracker to the health plane: a freshly violated
// window degrades the "slo" component, and Burn consecutive violated
// windows escalate to Overloaded — the pipeline is still serving, but
// persistently later than the objective allows.
package slo

import (
	"fmt"
	"time"

	"datacron/internal/health"
	"datacron/internal/obs"
)

// Objective is one freshness target.
type Objective struct {
	// Name labels the objective in /slo, /statz and the published metrics
	// ("slo.<name>.*"). Defaults to Family when empty.
	Name string
	// Family is the lag histogram to evaluate, e.g. "lag.predict.seconds".
	Family string
	// Quantile in (0,1], e.g. 0.99. Default 0.99.
	Quantile float64
	// Threshold is the freshness bound the quantile must stay within.
	Threshold time.Duration
	// Window is the evaluation window length. Default 1m.
	Window time.Duration
	// Burn is how many consecutive violated windows count as sustained
	// violation (the Overloaded escalation in Checker). Default 3.
	Burn int
}

func (o Objective) withDefaults() Objective {
	if o.Name == "" {
		o.Name = o.Family
	}
	if o.Quantile <= 0 || o.Quantile > 1 {
		o.Quantile = 0.99
	}
	if o.Window <= 0 {
		o.Window = time.Minute
	}
	if o.Burn <= 0 {
		o.Burn = 3
	}
	return o
}

// Status is one objective's current standing — the /slo wire form.
type Status struct {
	Name             string  `json:"name"`
	Family           string  `json:"family"`
	Quantile         float64 `json:"quantile"`
	ThresholdSeconds float64 `json:"thresholdSeconds"`
	WindowSeconds    float64 `json:"windowSeconds"`
	// Current is the evaluated quantile (seconds) of the last closed
	// window; 0 until a window has closed or when it had no observations.
	Current float64 `json:"currentSeconds"`
	// Violated reports whether the last closed window broke the objective.
	Violated bool `json:"violated"`
	// Windows / Violations count closed and violated windows.
	Windows    int64 `json:"windows"`
	Violations int64 `json:"violations"`
	// Streak is the current run of consecutively violated windows.
	Streak int `json:"streak"`
	// BudgetBurn is Violations/Windows — the fraction of the error budget
	// burned so far (0 until a window has closed).
	BudgetBurn float64 `json:"budgetBurn"`
}

type objState struct {
	cfg Objective

	windowStart time.Time
	base        obs.HistogramSnapshot
	haveBase    bool

	current    float64
	violated   bool
	windows    int64
	violations int64
	streak     int

	// Published handles (no-ops without a registry).
	gQuantile *obs.Gauge
	gViolated *obs.Gauge
	gBurn     *obs.Gauge
	cWindows  *obs.Counter
	cViolated *obs.Counter
}

// Tracker evaluates a set of objectives. Drive it with Observe; it is not
// safe for concurrent use on its own — the health watchdog (or the test)
// serialises calls. A nil *Tracker is a valid no-op.
type Tracker struct {
	objs []*objState
}

// NewTracker builds a tracker over the given objectives, publishing per-
// objective gauges and counters into reg (nil reg disables publication):
//
//	slo.<name>.quantile_seconds  gauge    last closed window's quantile
//	slo.<name>.violated          gauge    1 while the last window violated
//	slo.<name>.burn              gauge    error-budget burn fraction
//	slo.<name>.windows           counter  closed windows
//	slo.<name>.violations        counter  violated windows
func NewTracker(reg *obs.Registry, objs ...Objective) *Tracker {
	t := &Tracker{}
	for _, o := range objs {
		o = o.withDefaults()
		t.objs = append(t.objs, &objState{
			cfg:       o,
			gQuantile: reg.Gauge("slo." + o.Name + ".quantile_seconds"),
			gViolated: reg.Gauge("slo." + o.Name + ".violated"),
			gBurn:     reg.Gauge("slo." + o.Name + ".burn"),
			cWindows:  reg.Counter("slo." + o.Name + ".windows"),
			cViolated: reg.Counter("slo." + o.Name + ".violations"),
		})
	}
	return t
}

// Observe feeds one metric snapshot. The first call anchors each
// objective's window; later calls close as many windows as snap.At has
// crossed since. A registry reset (crash recovery) moves histogram counts
// backwards — the tracker detects that and re-anchors instead of deriving
// negative deltas.
func (t *Tracker) Observe(snap obs.Snapshot) {
	if t == nil {
		return
	}
	for _, o := range t.objs {
		o.observe(snap)
	}
}

func (o *objState) observe(snap obs.Snapshot) {
	cur, ok := snap.Histogram(o.cfg.Family)
	if !o.haveBase {
		// Anchor: the family may not exist yet (no records processed) — an
		// absent histogram is the zero snapshot, which subtracts cleanly.
		o.windowStart = snap.At
		o.base = cur
		o.haveBase = true
		return
	}
	if !ok && o.base.Count > 0 {
		// Family vanished after carrying observations (registry reset before
		// the first new observation): re-anchor on the empty distribution.
		o.windowStart = snap.At
		o.base = obs.HistogramSnapshot{}
		return
	}
	// A family that has never existed is the zero distribution: idle
	// windows still close (vacuously compliant) so Windows keeps counting.
	if cur.Count < o.base.Count {
		// Counts moved backwards: the registry was reset underneath us.
		// Re-anchor; the partial window before the crash is not judged
		// (its observations are gone with the reset, by design).
		o.windowStart = snap.At
		o.base = cur
		return
	}
	for snap.At.Sub(o.windowStart) >= o.cfg.Window {
		o.closeWindow(cur)
		o.windowStart = o.windowStart.Add(o.cfg.Window)
	}
}

// closeWindow judges the delta distribution accumulated since the window
// baseline. An empty window (no lag observations) is vacuously compliant:
// nothing was late because nothing happened.
func (o *objState) closeWindow(cur obs.HistogramSnapshot) {
	delta := sub(cur, o.base)
	o.base = cur
	o.windows++
	o.cWindows.Inc()
	o.current = 0
	o.violated = false
	if delta.Count > 0 {
		q := delta.Quantile(o.cfg.Quantile)
		o.current = q
		o.violated = q > o.cfg.Threshold.Seconds()
	}
	if o.violated {
		o.violations++
		o.streak++
		o.cViolated.Inc()
	} else {
		o.streak = 0
	}
	o.gQuantile.Set(o.current)
	if o.violated {
		o.gViolated.Set(1)
	} else {
		o.gViolated.Set(0)
	}
	o.gBurn.Set(float64(o.violations) / float64(o.windows))
}

// sub returns cur − base bucket-wise. Mismatched shapes (bounds changed,
// base empty) fall back to cur alone.
func sub(cur, base obs.HistogramSnapshot) obs.HistogramSnapshot {
	if len(base.Counts) != len(cur.Counts) {
		return cur
	}
	out := obs.HistogramSnapshot{
		Name:   cur.Name,
		Bounds: cur.Bounds,
		Counts: make([]int64, len(cur.Counts)),
		Count:  cur.Count - base.Count,
		Sum:    cur.Sum - base.Sum,
	}
	for i := range cur.Counts {
		out.Counts[i] = cur.Counts[i] - base.Counts[i]
	}
	return out
}

// Status returns every objective's standing, in construction order.
func (t *Tracker) Status() []Status {
	if t == nil {
		return nil
	}
	out := make([]Status, 0, len(t.objs))
	for _, o := range t.objs {
		st := Status{
			Name:             o.cfg.Name,
			Family:           o.cfg.Family,
			Quantile:         o.cfg.Quantile,
			ThresholdSeconds: o.cfg.Threshold.Seconds(),
			WindowSeconds:    o.cfg.Window.Seconds(),
			Current:          o.current,
			Violated:         o.violated,
			Windows:          o.windows,
			Violations:       o.violations,
			Streak:           o.streak,
		}
		if o.windows > 0 {
			st.BudgetBurn = float64(o.violations) / float64(o.windows)
		}
		out = append(out, st)
	}
	return out
}

// Checker adapts a Tracker to the health plane: each watchdog tick feeds
// the tick's snapshot into the tracker, then files one "slo" verdict over
// all objectives — Degraded while any objective's last window violated
// (the budget is burning), Overloaded once any objective has violated
// Burn consecutive windows (sustained violation: the pipeline is serving
// persistently staler than promised). Like the other health checkers it
// costs readiness, never liveness.
type Checker struct {
	t *Tracker
}

// NewChecker wraps a tracker for Watchdog.Register.
func NewChecker(t *Tracker) *Checker { return &Checker{t: t} }

// Name implements health.Checker.
func (c *Checker) Name() string { return "slo" }

// Check implements health.Checker. prev is unused: the tracker keeps its
// own window baselines, which survive across ticks.
func (c *Checker) Check(_, cur obs.Snapshot) health.Result {
	c.t.Observe(cur)
	res := health.Result{Component: "slo", Status: health.Healthy, Detail: "objectives met"}
	for _, st := range c.t.Status() {
		switch {
		case st.Streak >= burnOf(st, c.t):
			return health.Result{
				Component: "slo",
				Status:    health.Overloaded,
				Detail: fmt.Sprintf("%s: p%g=%.3gs > %.3gs for %d consecutive windows",
					st.Name, st.Quantile*100, st.Current, st.ThresholdSeconds, st.Streak),
			}
		case st.Violated && res.Status < health.Degraded:
			res = health.Result{
				Component: "slo",
				Status:    health.Degraded,
				Detail: fmt.Sprintf("%s: p%g=%.3gs > %.3gs (budget burn %.0f%%)",
					st.Name, st.Quantile*100, st.Current, st.ThresholdSeconds, st.BudgetBurn*100),
			}
		}
	}
	return res
}

// burnOf finds the objective's configured Burn for a status row.
func burnOf(st Status, t *Tracker) int {
	for _, o := range t.objs {
		if o.cfg.Name == st.Name {
			return o.cfg.Burn
		}
	}
	return 3
}
