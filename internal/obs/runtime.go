package obs

import (
	"math"
	"runtime/metrics"
	"sync"
)

// RuntimeSampler publishes Go runtime self-metrics into a Registry under
// the "runtime.*" prefix:
//
//	runtime.goroutines        gauge      live goroutine count
//	runtime.heap_alloc_bytes  gauge      bytes in live + dead heap objects
//	runtime.heap_sys_bytes    gauge      bytes of heap memory held from the OS
//	runtime.gc_pause.seconds  histogram  stop-the-world GC pause durations
//
// Sample is meant to be called on each metrics scrape (the admin server
// does this), keeping the readings fresh without a background goroutine.
// The values come from the runtime, not the injected Clock — they are
// inherently wall-bound and sit outside the deterministic replay path.
// A nil *RuntimeSampler (from a nil Registry) is a valid no-op.
type RuntimeSampler struct {
	mu      sync.Mutex
	samples []metrics.Sample
	prev    []uint64 // cumulative /gc/pauses counts at the previous Sample

	goroutines *Gauge
	heapAlloc  *Gauge
	heapSys    *Gauge
	gcPause    *Histogram
}

// The /memory/classes/heap/* components that together make up the heap
// memory held from the OS (objects + unused spans + free + released).
const (
	smpGoroutines = iota
	smpHeapObjects
	smpHeapUnused
	smpHeapFree
	smpHeapReleased
	smpGCPauses
)

// NewRuntimeSampler returns a sampler publishing into reg, or nil (a
// no-op) when reg is nil.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	if reg == nil {
		return nil
	}
	return &RuntimeSampler{
		samples: []metrics.Sample{
			smpGoroutines:   {Name: "/sched/goroutines:goroutines"},
			smpHeapObjects:  {Name: "/memory/classes/heap/objects:bytes"},
			smpHeapUnused:   {Name: "/memory/classes/heap/unused:bytes"},
			smpHeapFree:     {Name: "/memory/classes/heap/free:bytes"},
			smpHeapReleased: {Name: "/memory/classes/heap/released:bytes"},
			smpGCPauses:     {Name: "/gc/pauses:seconds"},
		},
		goroutines: reg.Gauge("runtime.goroutines"),
		heapAlloc:  reg.Gauge("runtime.heap_alloc_bytes"),
		heapSys:    reg.Gauge("runtime.heap_sys_bytes"),
		gcPause:    reg.Histogram("runtime.gc_pause.seconds"),
	}
}

// Sample reads the runtime metrics once and updates the registry. Safe for
// concurrent use (scrapes may overlap).
func (r *RuntimeSampler) Sample() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	metrics.Read(r.samples)
	r.goroutines.Set(uintValue(r.samples[smpGoroutines]))
	alloc := uintValue(r.samples[smpHeapObjects])
	r.heapAlloc.Set(alloc)
	r.heapSys.Set(alloc +
		uintValue(r.samples[smpHeapUnused]) +
		uintValue(r.samples[smpHeapFree]) +
		uintValue(r.samples[smpHeapReleased]))
	if r.samples[smpGCPauses].Value.Kind() == metrics.KindFloat64Histogram {
		r.observePauses(r.samples[smpGCPauses].Value.Float64Histogram())
	}
}

func uintValue(s metrics.Sample) float64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return float64(s.Value.Uint64())
}

// observePauses re-bins the runtime's cumulative pause histogram into the
// registry histogram: each bucket's count delta since the previous Sample
// is observed at the bucket midpoint (the finite edge when a bound is
// infinite). The runtime histogram only ever grows, so deltas are >= 0.
func (r *RuntimeSampler) observePauses(h *metrics.Float64Histogram) {
	if len(r.prev) != len(h.Counts) {
		r.prev = make([]uint64, len(h.Counts))
	}
	for i, c := range h.Counts {
		d := int64(c - r.prev[i])
		r.prev[i] = c
		if d <= 0 {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var mid float64
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		r.gcPause.observeN(mid, d)
	}
}
