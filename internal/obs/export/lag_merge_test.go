package export

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"datacron/internal/obs"
)

// lagRegistry builds one shard's worth of freshness families on a
// ManualClock: a lag histogram plus its freshness-watermark gauge.
func lagRegistry(lags ...time.Duration) *obs.Registry {
	clk := obs.NewManualClock(epoch)
	r := obs.NewRegistry(clk)
	stage := obs.NewLagStage(r, "decode")
	now := clk.Now()
	for _, lag := range lags {
		stage.Observe(now, now.Add(-lag))
	}
	clk.Advance(10 * time.Second)
	return r
}

// TestLagFamilyMergeThenRenderGolden pins the cross-shard merge contract
// for the freshness plane end to end: two shard registries merged into the
// coordinator's view (histogram buckets summed, the .max_seconds watermark
// taking the max, per-shard labelled copies kept) and rendered to the
// Prometheus exposition byte for byte.
func TestLagFamilyMergeThenRenderGolden(t *testing.T) {
	main := lagRegistry() // coordinator: no decode observations of its own
	shard0 := lagRegistry(50*time.Millisecond, 200*time.Millisecond)
	shard1 := lagRegistry(2 * time.Second)

	merged := main.Snapshot()
	for i, reg := range []*obs.Registry{shard0, shard1} {
		snap := reg.Snapshot()
		merged = merged.Merge(snap)
		merged = merged.Merge(snap.Prefixed([]string{"shard.0.", "shard.1."}[i]))
	}

	// The aggregate histogram sums the shards; the watermark takes the max.
	h, ok := merged.Histogram("lag.decode.seconds")
	if !ok || h.Count != 3 {
		t.Fatalf("merged lag.decode.seconds = %+v, want 3 observations", h)
	}
	if mark, _ := merged.Gauge("lag.decode.max_seconds"); mark != 2 {
		t.Fatalf("merged watermark = %v, want max 2 (not shard 1's last-write)", mark)
	}
	if _, ok := merged.Histogram("shard.1.lag.decode.seconds"); !ok {
		t.Fatal("per-shard labelled lag family missing after merge")
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, merged, Options{}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "lag_merge.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("merged lag exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Spot-check the shape the golden pins.
	for _, line := range []string{
		"lag_decode_max_seconds 2",
		"lag_decode_seconds_count 3",
		"shard_0_lag_decode_seconds_count 2",
		"shard_1_lag_decode_max_seconds 2",
	} {
		if !strings.Contains(buf.String(), line) {
			t.Errorf("exposition missing %q", line)
		}
	}
}
