// Package export renders obs.Snapshot values for the serving plane: the
// Prometheus text exposition format (version 0.0.4) behind the admin
// server's /metrics endpoint, and a JSON form behind /statz. Like the rest
// of the observability layer it is built exclusively on the standard
// library.
//
// The internal metric namespace is dotted ("msg.depth.surveillance.raw");
// Prometheus names must match [a-zA-Z_:][a-zA-Z0-9_:]*. A Mapper translates
// between the two worlds: it turns an internal name into an exposition
// family plus labels, so per-topic and per-operator series collapse into
// one labelled family instead of exploding the name space. DefaultMapping
// knows this repository's naming conventions; unmapped names fall back to
// character sanitisation.
//
// Every sample value is sanitised to a finite number: snapshots taken
// against a never-advanced ManualClock derive 0 rates (see obs.Snapshot.
// Rate), and NaN/±Inf readings from any other source are rendered as 0 —
// non-finite values are not valid exposition output.
package export

import (
	"sort"
	"strconv"
	"strings"
)

// Label is one name/value pair attached to a series.
type Label struct {
	Name  string
	Value string
}

// Mapper rewrites an internal metric name into an exposition family name
// and labels. The family is sanitised afterwards, label values are escaped
// at render time; a Mapper therefore never needs to escape anything.
type Mapper func(name string) (family string, labels []Label)

// Options configures the Prometheus renderer.
type Options struct {
	// Namespace, when non-empty, prefixes every family ("datacron" →
	// datacron_core_records_total).
	Namespace string
	// Help maps family names (post-mapping, without the namespace prefix
	// and without the counter _total suffix) to HELP text. Families without
	// an entry get no HELP line.
	Help map[string]string
	// Const labels are stamped on every series (e.g. job or instance).
	Const []Label
	// Map translates internal names; nil uses DefaultMapping().
	Map Mapper
	// Rates additionally emits a <family>_per_second gauge for every
	// counter, derived from the snapshot's elapsed window. A zero window
	// derives 0.
	Rates bool
}

// identityMapping maps every name to itself with no labels.
func identityMapping(name string) (string, []Label) { return name, nil }

// DefaultMapping returns the Mapper encoding this repository's metric
// naming conventions:
//
//	msg.depth.<topic>        → msg_depth{topic=...}   (likewise produced, bytes)
//	msg.lag.<group>/<topic>  → msg_lag{group=..., topic=...}
//	stream.<op>.<metric>     → stream_<metric>{op=...}
//	trace.<span>.<metric>    → trace_<metric>{span=...}
//	health.<component>.status→ health_status{component=...}
//
// Everything else keeps its dotted name, sanitised to underscores.
func DefaultMapping() Mapper {
	return func(name string) (string, []Label) {
		switch {
		case hasSegPrefix(name, "msg.depth."), hasSegPrefix(name, "msg.produced."), hasSegPrefix(name, "msg.bytes."):
			parts := strings.SplitN(name, ".", 3)
			return "msg_" + parts[1], []Label{{Name: "topic", Value: parts[2]}}
		case hasSegPrefix(name, "msg.lag."):
			rest := strings.TrimPrefix(name, "msg.lag.")
			if group, topic, ok := strings.Cut(rest, "/"); ok {
				return "msg_lag", []Label{{Name: "group", Value: group}, {Name: "topic", Value: topic}}
			}
			return "msg_lag", []Label{{Name: "group", Value: rest}}
		case hasSegPrefix(name, "stream."):
			if op, metric, ok := splitMiddle(name, "stream."); ok {
				return "stream_" + metric, []Label{{Name: "op", Value: op}}
			}
		case hasSegPrefix(name, "trace."):
			if span, metric, ok := splitMiddle(name, "trace."); ok {
				return "trace_" + metric, []Label{{Name: "span", Value: span}}
			}
		case hasSegPrefix(name, "health."):
			if comp, metric, ok := splitMiddle(name, "health."); ok {
				return "health_" + metric, []Label{{Name: "component", Value: comp}}
			}
		}
		return name, nil
	}
}

// hasSegPrefix is strings.HasPrefix with the intent (segment boundary
// included in the prefix) spelled out at call sites.
func hasSegPrefix(name, prefix string) bool { return strings.HasPrefix(name, prefix) }

// splitMiddle splits "<prefix><middle>.<rest>" into middle and rest with
// dots in rest converted later by sanitisation.
func splitMiddle(name, prefix string) (middle, rest string, ok bool) {
	trimmed := strings.TrimPrefix(name, prefix)
	middle, rest, ok = strings.Cut(trimmed, ".")
	if !ok || middle == "" || rest == "" {
		return "", "", false
	}
	return middle, rest, true
}

// sanitizeName rewrites a family name into the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*; every invalid rune becomes an underscore and an
// empty or digit-leading name gains a leading underscore.
func sanitizeName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !valid {
			if i == 0 && r >= '0' && r <= '9' {
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// sanitizeLabelName rewrites a label name into [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelName(name string) string {
	s := sanitizeName(name)
	return strings.ReplaceAll(s, ":", "_")
}

// escapeHelp escapes a HELP string per the exposition format: backslash and
// newline only.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// finite maps NaN and ±Inf to 0; everything the renderers print goes
// through it.
func finite(v float64) float64 {
	if v != v || v > maxFinite || v < -maxFinite {
		return 0
	}
	return v
}

const maxFinite = 1.7976931348623157e308

// formatValue renders a (sanitised) sample value in the shortest exact
// form, matching Go's %g with full precision.
func formatValue(v float64) string {
	return strconv.FormatFloat(finite(v), 'g', -1, 64)
}

// labelString renders a sorted, escaped label set incl. braces; empty
// input renders as the empty string.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sanitizeLabelName(l.Name))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
