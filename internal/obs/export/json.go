package export

import (
	"encoding/json"
	"io"
	"time"

	"datacron/internal/obs"
)

// SnapshotJSON is the wire form of an obs.Snapshot behind the admin
// server's /statz endpoint. All float fields are finite: encoding/json
// rejects NaN and ±Inf, so histogram means over zero observations and
// rates over zero windows are rendered as 0.
type SnapshotJSON struct {
	At             time.Time       `json:"at"`
	ElapsedSeconds float64         `json:"elapsedSeconds"`
	Counters       []CounterJSON   `json:"counters,omitempty"`
	Gauges         []GaugeJSON     `json:"gauges,omitempty"`
	Histograms     []HistogramJSON `json:"histograms,omitempty"`
}

// CounterJSON is one counter with its derived per-second rate over the
// snapshot window.
type CounterJSON struct {
	Name       string  `json:"name"`
	Value      int64   `json:"value"`
	RatePerSec float64 `json:"ratePerSec"`
}

// GaugeJSON is one gauge reading.
type GaugeJSON struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketJSON is one histogram bucket with its cumulative count; LE is the
// upper bound rendered like the Prometheus le label ("+Inf" for overflow).
type BucketJSON struct {
	LE         string `json:"le"`
	Cumulative int64  `json:"cumulative"`
}

// HistogramJSON is one histogram with derived mean and quantiles.
type HistogramJSON struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	Mean    float64      `json:"mean"`
	P50     float64      `json:"p50"`
	P99     float64      `json:"p99"`
	Buckets []BucketJSON `json:"buckets,omitempty"`
}

// JSONSnapshot converts a snapshot to its JSON form, sanitising every
// derived value to a finite number.
func JSONSnapshot(s obs.Snapshot) SnapshotJSON {
	out := SnapshotJSON{At: s.At, ElapsedSeconds: finite(s.Elapsed.Seconds())}
	for _, c := range s.Counters {
		out.Counters = append(out.Counters, CounterJSON{
			Name: c.Name, Value: c.Value, RatePerSec: finite(s.Rate(c.Name)),
		})
	}
	for _, g := range s.Gauges {
		out.Gauges = append(out.Gauges, GaugeJSON{Name: g.Name, Value: finite(g.Value)})
	}
	for _, h := range s.Histograms {
		hj := HistogramJSON{
			Name:  h.Name,
			Count: h.Count,
			Sum:   finite(h.Sum),
			Mean:  finite(h.Mean()),
			P50:   finite(h.Quantile(0.5)),
			P99:   finite(h.Quantile(0.99)),
		}
		var cum int64
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatValue(h.Bounds[i])
			}
			hj.Buckets = append(hj.Buckets, BucketJSON{LE: le, Cumulative: cum})
		}
		out.Histograms = append(out.Histograms, hj)
	}
	return out
}

// WriteJSON writes the snapshot's JSON form, indented for curl-friendly
// reading.
func WriteJSON(w io.Writer, s obs.Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(JSONSnapshot(s))
}
