package export

import (
	"encoding/json"
	"io"
	"time"

	"datacron/internal/obs"
)

// SpanJSON is the wire form of one completed span: flat (parent-linked by
// ID) for the JSONL export and the default /traces listing, optionally
// nested for the /traces?span_tree=1 view.
type SpanJSON struct {
	ID              int64             `json:"id"`
	Parent          int64             `json:"parent,omitempty"`
	Name            string            `json:"name"`
	Start           time.Time         `json:"start"`
	DurationSeconds float64           `json:"durationSeconds"`
	Attrs           map[string]string `json:"attrs,omitempty"`
	Children        []*SpanJSON       `json:"children,omitempty"`
}

// JSONSpan converts one span record (without children).
func JSONSpan(r obs.SpanRecord) SpanJSON {
	s := SpanJSON{
		ID:              r.ID,
		Parent:          r.Parent,
		Name:            r.Name,
		Start:           r.Start,
		DurationSeconds: r.Duration.Seconds(),
	}
	if len(r.Attrs) > 0 {
		s.Attrs = make(map[string]string, len(r.Attrs))
		for _, a := range r.Attrs {
			s.Attrs[a.Key] = a.Value
		}
	}
	return s
}

// JSONSpans converts a span slice, preserving order (Tracer.Recent hands
// them over oldest first — the contract holds across ring wraparound).
func JSONSpans(recs []obs.SpanRecord) []SpanJSON {
	out := make([]SpanJSON, len(recs))
	for i, r := range recs {
		out[i] = JSONSpan(r)
	}
	return out
}

// SpanTrees reassembles the flat, completion-ordered span slice into
// trees: each span is attached to its parent when the parent is present,
// and becomes a root otherwise (true roots have Parent 0; orphans whose
// parent was evicted from the ring — or has not completed yet — surface
// as roots rather than vanishing). Children keep completion order, and
// roots appear oldest first.
func SpanTrees(recs []obs.SpanRecord) []*SpanJSON {
	nodes := make([]*SpanJSON, len(recs))
	byID := make(map[int64]*SpanJSON, len(recs))
	for i, r := range recs {
		n := new(SpanJSON)
		*n = JSONSpan(r)
		nodes[i] = n
		byID[r.ID] = n
	}
	var roots []*SpanJSON
	for i, r := range recs {
		if p, ok := byID[r.Parent]; ok && r.Parent != 0 {
			p.Children = append(p.Children, nodes[i])
		} else {
			roots = append(roots, nodes[i])
		}
	}
	return roots
}

// WriteSpansJSONL writes one JSON object per line per span, in the given
// (oldest-first) order — the flight-recorder dump format for offline
// analysis: `jq 'select(.name=="record")'` and friends work line by line
// without loading the whole trace.
func WriteSpansJSONL(w io.Writer, recs []obs.SpanRecord) error {
	enc := json.NewEncoder(w) // Encode appends the newline: one span per line
	for _, r := range recs {
		if err := enc.Encode(JSONSpan(r)); err != nil {
			return err
		}
	}
	return nil
}
