package export

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"datacron/internal/obs"
)

// spanFixture is one completed record tree plus an orphan whose parent fell
// off the ring, in completion order (children before parents).
func spanFixture() []obs.SpanRecord {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return []obs.SpanRecord{
		{ID: 9, Parent: 3, Name: "orphaned-child", Start: start, Duration: time.Millisecond},
		{ID: 11, Parent: 10, Name: "decode", Start: start, Duration: 2 * time.Millisecond,
			Attrs: []obs.Attr{{Key: "shard", Value: "1"}}},
		{ID: 12, Parent: 10, Name: "emit", Start: start, Duration: time.Millisecond},
		{ID: 10, Parent: 0, Name: "record", Start: start, Duration: 5 * time.Millisecond,
			Attrs: []obs.Attr{{Key: "mover", Value: "m7"}, {Key: "partition", Value: "2"}}},
	}
}

func TestSpanTreesNestByParent(t *testing.T) {
	trees := SpanTrees(spanFixture())
	if len(trees) != 2 {
		t.Fatalf("got %d roots, want 2 (the record tree and the orphan)", len(trees))
	}
	// Roots keep completion order: the orphan completed first.
	if trees[0].Name != "orphaned-child" || trees[0].Parent != 3 {
		t.Fatalf("trees[0] = %+v, want the orphan promoted to root (its parent evicted)", trees[0])
	}
	rec := trees[1]
	if rec.Name != "record" || len(rec.Children) != 2 {
		t.Fatalf("record tree = %+v, want 2 children", rec)
	}
	if rec.Children[0].Name != "decode" || rec.Children[1].Name != "emit" {
		t.Errorf("children order = %s,%s, want completion order decode,emit",
			rec.Children[0].Name, rec.Children[1].Name)
	}
	if rec.Attrs["mover"] != "m7" || rec.Children[0].Attrs["shard"] != "1" {
		t.Errorf("attrs lost in tree form: root=%v child=%v", rec.Attrs, rec.Children[0].Attrs)
	}
	if rec.DurationSeconds != 0.005 {
		t.Errorf("root duration = %v, want 0.005", rec.DurationSeconds)
	}
}

func TestJSONSpansCarryParentAndAttrs(t *testing.T) {
	spans := JSONSpans(spanFixture())
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	data, err := json.Marshal(spans[1])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"parent":10`, `"name":"decode"`, `"shard":"1"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("decode span JSON %s missing %s", data, want)
		}
	}
	// The flat form must not nest.
	if strings.Contains(string(data), "children") {
		t.Errorf("flat span JSON unexpectedly nests: %s", data)
	}
}

func TestWriteSpansJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpansJSONL(&buf, spanFixture()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	for i, line := range lines {
		var span SpanJSON
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
	}
	// Oldest first, same order as the input ring dump.
	var first SpanJSON
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.ID != 9 {
		t.Errorf("first line ID = %d, want 9 (completion order preserved)", first.ID)
	}
}

func TestSpanTreesEmpty(t *testing.T) {
	if trees := SpanTrees(nil); len(trees) != 0 {
		t.Errorf("SpanTrees(nil) = %v, want empty", trees)
	}
}
