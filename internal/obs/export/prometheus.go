package export

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"datacron/internal/obs"
)

// ContentType is the Content-Type header value for the exposition output
// WritePrometheus produces.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// family accumulates one exposition family: a # TYPE line plus its series,
// kept in insertion order (the snapshot is already name-sorted, and
// histogram buckets must stay in ascending-le order).
type family struct {
	name   string // rendered name, without namespace
	kind   string // counter | gauge | histogram
	series []series
}

type series struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels string // rendered label block, may be empty
	value  string
}

// renderer collects families keyed by rendered name so TYPE lines are
// emitted exactly once per family even when several internal metrics map
// onto it.
type renderer struct {
	opts     Options
	mapper   Mapper
	families map[string]*family
	order    []string
}

func newRenderer(opts Options) *renderer {
	m := opts.Map
	if m == nil {
		m = DefaultMapping()
	}
	return &renderer{opts: opts, mapper: m, families: make(map[string]*family)}
}

// ensure returns the named family, creating it on first use. Kind conflicts
// (two internal metrics of different kinds mapped onto one family) are
// resolved deterministically by suffixing the kind, which keeps the output
// valid instead of emitting duplicate TYPE lines.
func (r *renderer) ensure(famName, kind string) *family {
	f, ok := r.families[famName]
	if ok && f.kind != kind {
		famName += "_" + kind
		f, ok = r.families[famName]
	}
	if !ok {
		f = &family{name: famName, kind: kind}
		r.families[famName] = f
		r.order = append(r.order, famName)
	}
	return f
}

// resolve maps an internal metric name through the Mapper and returns the
// family plus the series labels (mapper labels followed by const labels).
func (r *renderer) resolve(name, kind, suffix string) (*family, []Label) {
	mapped, labels := r.mapper(name)
	f := r.ensure(sanitizeName(mapped)+suffix, kind)
	return f, append(labels, r.opts.Const...)
}

func (r *renderer) add(f *family, suffix string, labels []Label, value string) {
	f.series = append(f.series, series{suffix: suffix, labels: labelString(labels), value: value})
}

// helpFor looks up HELP text: families are keyed without the namespace and
// without the counter _total suffix, so one Help entry can cover a counter
// family while its derived _per_second gauge keys independently.
func (r *renderer) helpFor(famName string) (string, bool) {
	h, ok := r.opts.Help[famName]
	if !ok {
		h, ok = r.opts.Help[strings.TrimSuffix(famName, "_total")]
	}
	return h, ok
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, version 0.0.4: for every family a # TYPE line (plus # HELP when
// configured), then its series. Counters gain the conventional _total
// suffix; with opts.Rates each counter additionally yields a
// <family>_per_second gauge derived over the snapshot window (a zero
// window derives 0, see obs.Snapshot.Rate). Histograms render cumulative
// le-buckets, _sum and _count. Every value is finite: NaN and ±Inf
// sanitise to 0, which the format would otherwise reject.
func WritePrometheus(w io.Writer, s obs.Snapshot, opts Options) error {
	r := newRenderer(opts)

	for _, c := range s.Counters {
		f, labels := r.resolve(c.Name, "counter", "_total")
		r.add(f, "", labels, formatValue(float64(c.Value)))
		if opts.Rates {
			rateName := strings.TrimSuffix(f.name, "_total") + "_per_second"
			rf := r.ensure(rateName, "gauge")
			r.add(rf, "", labels, formatValue(s.Rate(c.Name)))
		}
	}
	for _, g := range s.Gauges {
		f, labels := r.resolve(g.Name, "gauge", "")
		r.add(f, "", labels, formatValue(g.Value))
	}
	for _, h := range s.Histograms {
		f, labels := r.resolve(h.Name, "histogram", "")
		var cum int64
		for i, n := range h.Counts {
			cum += n
			le := "+Inf"
			if i < len(h.Bounds) {
				le = formatValue(h.Bounds[i])
			}
			bl := append(append([]Label(nil), labels...), Label{Name: "le", Value: le})
			r.add(f, "_bucket", bl, formatValue(float64(cum)))
		}
		r.add(f, "_sum", labels, formatValue(h.Sum))
		r.add(f, "_count", labels, formatValue(float64(cum)))
	}

	return r.write(w)
}

func (r *renderer) write(w io.Writer) error {
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		full := f.name
		if r.opts.Namespace != "" {
			full = sanitizeName(r.opts.Namespace) + "_" + f.name
		}
		if help, ok := r.helpFor(f.name); ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", full, escapeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", full, f.kind); err != nil {
			return err
		}
		for _, sr := range f.series {
			if _, err := fmt.Fprintf(w, "%s%s%s %s\n", full, sr.suffix, sr.labels, sr.value); err != nil {
				return err
			}
		}
	}
	return nil
}
