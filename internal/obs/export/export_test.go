package export

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"datacron/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// fixedRegistry builds the deterministic registry behind the golden test:
// a ManualClock advanced by exactly 10s, counters, gauges and a histogram
// with explicit bounds.
func fixedRegistry() *obs.Registry {
	clk := obs.NewManualClock(epoch)
	r := obs.NewRegistry(clk)
	r.Counter("core.records").Add(1500)
	r.Counter("msg.produced.surveillance.raw").Add(1500)
	r.Counter("stream.win.in").Add(700)
	r.Gauge("synopses.compression_ratio").Set(0.937)
	r.Gauge("msg.depth.trajectory.synopses").Set(96)
	r.Gauge("msg.lag.realtime/surveillance.raw").Set(42)
	r.Gauge("health.watermark.status").Set(0)
	h := r.Histogram("checkpoint.capture.seconds", 0.001, 0.01, 0.1, 1)
	for _, v := range []float64{0.0004, 0.002, 0.003, 0.02, 0.5, 3} {
		h.Observe(v)
	}
	clk.Advance(10 * time.Second)
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	err := WritePrometheus(&buf, fixedRegistry().Snapshot(), Options{
		Namespace: "datacron",
		Help: map[string]string{
			"core_records":               "raw surveillance records consumed by the real-time layer",
			"checkpoint_capture_seconds": "time to capture one coordinated checkpoint",
		},
		Const: []Label{{Name: "job", Value: "datacron"}},
		Rates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestPrometheusExpositionShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, fixedRegistry().Snapshot(), Options{Rates: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE core_records_total counter",
		"core_records_total 1500",
		"# TYPE core_records_per_second gauge",
		"core_records_per_second 150",
		`msg_produced_total{topic="surveillance.raw"} 1500`,
		`msg_lag{group="realtime",topic="surveillance.raw"} 42`,
		`stream_in_total{op="win"} 700`,
		`health_status{component="watermark"} 0`,
		"# TYPE checkpoint_capture_seconds histogram",
		`checkpoint_capture_seconds_bucket{le="0.001"} 1`,
		`checkpoint_capture_seconds_bucket{le="0.01"} 3`,
		`checkpoint_capture_seconds_bucket{le="0.1"} 4`,
		`checkpoint_capture_seconds_bucket{le="1"} 5`,
		`checkpoint_capture_seconds_bucket{le="+Inf"} 6`,
		"checkpoint_capture_seconds_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, even though several internal metrics map
	// onto the labelled msg_depth / msg_lag families.
	if got := strings.Count(out, "# TYPE msg_lag gauge"); got != 1 {
		t.Errorf("msg_lag TYPE lines = %d, want 1", got)
	}
}

func TestHelpAndLabelEscaping(t *testing.T) {
	clk := obs.NewManualClock(epoch)
	r := obs.NewRegistry(clk)
	r.Counter("weird").Add(1)
	s := r.Snapshot()

	var buf bytes.Buffer
	err := WritePrometheus(&buf, s, Options{
		Help: map[string]string{
			"weird": "back\\slash and \"quotes\" and a\nnewline",
		},
		Const: []Label{{Name: "path", Value: `C:\tmp`}, {Name: "q", Value: "say \"hi\"\nbye"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// HELP escapes backslash and newline; quotes stay literal.
	if !strings.Contains(out, `# HELP weird_total back\\slash and "quotes" and a\nnewline`) {
		t.Errorf("help escaping wrong:\n%s", out)
	}
	// Label values escape backslash, quote and newline.
	if !strings.Contains(out, `path="C:\\tmp"`) || !strings.Contains(out, `q="say \"hi\"\nbye"`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
	if strings.Contains(out, "a\nnewline") || strings.Contains(out, "\nbye") {
		t.Errorf("raw newline leaked into exposition:\n%q", out)
	}
}

func TestHistogramMergeThenRender(t *testing.T) {
	// Two workers' histograms merged, then rendered: bucket cumulative
	// counts, sum and count must reflect the element-wise sum.
	mk := func(vals ...float64) obs.HistogramSnapshot {
		clk := obs.NewManualClock(epoch)
		r := obs.NewRegistry(clk)
		h := r.Histogram("flush.seconds", 1, 10)
		for _, v := range vals {
			h.Observe(v)
		}
		hs, ok := r.Snapshot().Histogram("flush.seconds")
		if !ok {
			t.Fatal("histogram missing from snapshot")
		}
		return hs
	}
	merged, err := mk(0.5, 5).Merge(mk(0.5, 20))
	if err != nil {
		t.Fatal(err)
	}
	s := obs.Snapshot{At: epoch, Histograms: []obs.HistogramSnapshot{merged}}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`flush_seconds_bucket{le="1"} 2`,
		`flush_seconds_bucket{le="10"} 3`,
		`flush_seconds_bucket{le="+Inf"} 4`,
		"flush_seconds_sum 26",
		"flush_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged render missing %q:\n%s", want, out)
		}
	}
}

func TestNonFiniteSanitised(t *testing.T) {
	clk := obs.NewManualClock(epoch)
	r := obs.NewRegistry(clk)
	r.Gauge("bad.nan").Set(math.NaN())
	r.Gauge("bad.inf").Set(math.Inf(1))
	r.Counter("events").Add(7)
	r.Histogram("empty.seconds", 1, 2) // zero observations: Mean() is NaN
	s := r.Snapshot()                  // Elapsed == 0: rates would divide by zero

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, s, Options{Rates: true}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"NaN", "Inf "} {
		if strings.Contains(buf.String(), bad) {
			t.Errorf("exposition contains %q:\n%s", bad, buf.String())
		}
	}
	if !strings.Contains(buf.String(), "events_per_second 0") {
		t.Errorf("zero-window rate must render 0:\n%s", buf.String())
	}

	var jb bytes.Buffer
	if err := WriteJSON(&jb, s); err != nil {
		t.Fatalf("WriteJSON over non-finite snapshot: %v", err)
	}
	var decoded SnapshotJSON
	if err := json.Unmarshal(jb.Bytes(), &decoded); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(decoded.Histograms) != 1 || decoded.Histograms[0].Mean != 0 {
		t.Errorf("empty-histogram mean must sanitise to 0, got %+v", decoded.Histograms)
	}
	for _, c := range decoded.Counters {
		if c.RatePerSec != 0 {
			t.Errorf("zero-window JSON rate = %v, want 0", c.RatePerSec)
		}
	}
}

func TestJSONSnapshotValues(t *testing.T) {
	s := fixedRegistry().Snapshot()
	j := JSONSnapshot(s)
	if j.ElapsedSeconds != 10 {
		t.Fatalf("elapsed = %v, want 10", j.ElapsedSeconds)
	}
	var recs *CounterJSON
	for i := range j.Counters {
		if j.Counters[i].Name == "core.records" {
			recs = &j.Counters[i]
		}
	}
	if recs == nil || recs.Value != 1500 || recs.RatePerSec != 150 {
		t.Fatalf("core.records JSON row = %+v", recs)
	}
	if len(j.Histograms) != 1 || j.Histograms[0].Count != 6 {
		t.Fatalf("histogram rows = %+v", j.Histograms)
	}
	buckets := j.Histograms[0].Buckets
	if buckets[len(buckets)-1].LE != "+Inf" || buckets[len(buckets)-1].Cumulative != 6 {
		t.Fatalf("overflow bucket = %+v", buckets[len(buckets)-1])
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"core.records":     "core_records",
		"9lives":           "_9lives",
		"ok_name:colon":    "ok_name:colon",
		"sp ace-dash/path": "sp_ace_dash_path",
		"":                 "_",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
