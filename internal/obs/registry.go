package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry holds named metrics. Resolving a metric by name takes the
// registry mutex and is meant to be done once, at instrumentation time; the
// returned handles update lock-free. A nil *Registry is a valid "metrics
// off" registry: every getter returns a nil (no-op) handle.
type Registry struct {
	clock Clock

	mu       sync.Mutex
	start    time.Time
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry reading time from clock (WallClock
// when nil). The creation instant anchors Snapshot's Elapsed, and with it
// every derived rate.
func NewRegistry(clock Clock) *Registry {
	if clock == nil {
		clock = WallClock{}
	}
	return &Registry{
		clock:    clock,
		start:    clock.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Clock returns the registry's time source. It is nil-safe: a nil registry
// hands out WallClock so callers can time operations unconditionally.
func (r *Registry) Clock() Clock {
	if r == nil || r.clock == nil {
		return WallClock{}
	}
	return r.clock
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (LatencyBuckets when none are given). Later calls
// return the existing histogram regardless of bounds. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = LatencyBuckets()
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered metric and restarts the rate window.
// Existing handles stay valid. Crash recovery calls this after restoring a
// checkpoint: metric state is monitoring-only and deliberately outside the
// checkpoint, so post-restore readings cover exactly the replayed span
// instead of double-counting it.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, g := range r.gauges {
		g.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
	r.start = r.clock.Now()
}

// Snapshot is a race-free, value-type copy of a registry at one instant,
// with metrics sorted by name. Elapsed is the time since the registry was
// created or last Reset, which anchors Rate.
type Snapshot struct {
	At         time.Time
	Elapsed    time.Duration
	Counters   []CounterSnapshot
	Gauges     []GaugeSnapshot
	Histograms []HistogramSnapshot
}

// Snapshot captures every metric. Safe to call concurrently with updates.
// A nil registry yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	s := Snapshot{At: now, Elapsed: now.Sub(r.start)}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value and whether it exists.
func (s Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns the named histogram snapshot and whether it exists.
func (s Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// Rate returns the named counter's per-second rate over the snapshot's
// elapsed window. An empty or zero window — a ManualClock that was never
// advanced — derives 0, never NaN or ±Inf: rate values flow into the
// Prometheus and JSON encoders of obs/export, where non-finite numbers are
// invalid output.
func (s Snapshot) Rate(name string) float64 {
	secs := s.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	r := float64(s.Counter(name)) / secs
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}

// Merge combines two snapshots — e.g. from partitioned workers: counters
// and histograms are summed; for gauges, o's reading wins where both exist
// (instantaneous values cannot be meaningfully added), except watermark
// gauges — names ending in ".max_seconds" — which merge by maximum, so a
// freshness watermark over merged shards is the worst lag across all of
// them rather than whichever shard was merged last. Histograms with
// mismatched bucket bounds keep the receiver's data. At/Elapsed take the
// larger of the two windows.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{At: s.At, Elapsed: s.Elapsed}
	if o.At.After(out.At) {
		out.At = o.At
	}
	if o.Elapsed > out.Elapsed {
		out.Elapsed = o.Elapsed
	}

	cs := make(map[string]int64, len(s.Counters)+len(o.Counters))
	for _, c := range s.Counters {
		cs[c.Name] += c.Value
	}
	for _, c := range o.Counters {
		cs[c.Name] += c.Value
	}
	names := make([]string, 0, len(cs))
	for name := range cs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.Counters = append(out.Counters, CounterSnapshot{Name: name, Value: cs[name]})
	}

	gs := make(map[string]float64, len(s.Gauges)+len(o.Gauges))
	for _, g := range s.Gauges {
		gs[g.Name] = g.Value
	}
	for _, g := range o.Gauges {
		if prev, ok := gs[g.Name]; ok && isWatermarkGauge(g.Name) {
			gs[g.Name] = math.Max(prev, g.Value)
			continue
		}
		gs[g.Name] = g.Value
	}
	names = names[:0]
	for name := range gs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.Gauges = append(out.Gauges, GaugeSnapshot{Name: name, Value: gs[name]})
	}

	hs := make(map[string]HistogramSnapshot, len(s.Histograms)+len(o.Histograms))
	for _, h := range s.Histograms {
		hs[h.Name] = h.clone()
	}
	for _, h := range o.Histograms {
		if prev, ok := hs[h.Name]; ok {
			if merged, err := prev.Merge(h); err == nil {
				hs[h.Name] = merged
			}
		} else {
			hs[h.Name] = h.clone()
		}
	}
	names = names[:0]
	for name := range hs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out.Histograms = append(out.Histograms, hs[name])
	}
	return out
}

// isWatermarkGauge reports whether a gauge is a monotone high-water mark
// (a freshness watermark), which merges by maximum rather than last-wins.
func isWatermarkGauge(name string) bool { return strings.HasSuffix(name, ".max_seconds") }

// Prefixed returns a copy of the snapshot with every metric name prefixed,
// e.g. "synopses.critical" → "shard.2.synopses.critical". The shard plane
// uses it to publish each worker's registry under a per-shard label next to
// the unlabelled aggregate, so both views coexist in one merged snapshot.
func (s Snapshot) Prefixed(prefix string) Snapshot {
	out := Snapshot{At: s.At, Elapsed: s.Elapsed}
	for _, c := range s.Counters {
		out.Counters = append(out.Counters, CounterSnapshot{Name: prefix + c.Name, Value: c.Value})
	}
	for _, g := range s.Gauges {
		out.Gauges = append(out.Gauges, GaugeSnapshot{Name: prefix + g.Name, Value: g.Value})
	}
	for _, h := range s.Histograms {
		hc := h.clone()
		hc.Name = prefix + h.Name
		out.Histograms = append(out.Histograms, hc)
	}
	return out
}

// WriteText renders the snapshot as a plain-text metrics dump: one line per
// metric, sorted by name within each kind. Counters include the per-second
// rate over the snapshot window, histograms their count/mean/p50/p99 — the
// live counterparts of the paper's §4.2 throughput figures.
func (s Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# metrics snapshot (window %s)\n", s.Elapsed.Round(time.Millisecond)); err != nil {
		return err
	}
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter %-42s %12d  rate=%.1f/s\n", c.Name, c.Value, s.Rate(c.Name)); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge   %-42s %12.4f\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "hist    %-42s count=%d mean=%.3g p50=%.3g p99=%.3g\n",
			h.Name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}
