package obs

import (
	"testing"
	"time"
)

func TestSpanTreeParentLinkageAndAttrs(t *testing.T) {
	clk := NewManualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	reg := NewRegistry(clk)
	tr := NewTracer(reg, 16)

	root := tr.StartSpan("record", Attr{Key: "mover", Value: "m1"}, Attr{Key: "partition", Value: "2"})
	clk.Advance(time.Millisecond)
	decode := root.Child("decode", Attr{Key: "shard", Value: "0"})
	clk.Advance(2 * time.Millisecond)
	decode.End()
	emit := root.Child("emit")
	clk.Advance(time.Millisecond)
	emit.End()
	root.End()

	recs := tr.Recent()
	if len(recs) != 3 {
		t.Fatalf("got %d spans, want 3", len(recs))
	}
	// Completion order: children complete before their parent, so the root
	// is last and every Parent reference points backwards in the slice.
	if recs[0].Name != "decode" || recs[1].Name != "emit" || recs[2].Name != "record" {
		t.Fatalf("completion order = %s,%s,%s", recs[0].Name, recs[1].Name, recs[2].Name)
	}
	rootRec := recs[2]
	if rootRec.Parent != 0 {
		t.Errorf("root parent = %d, want 0", rootRec.Parent)
	}
	for _, rec := range recs[:2] {
		if rec.Parent != rootRec.ID {
			t.Errorf("%s parent = %d, want root %d", rec.Name, rec.Parent, rootRec.ID)
		}
	}
	if len(rootRec.Attrs) != 2 || rootRec.Attrs[0] != (Attr{Key: "mover", Value: "m1"}) {
		t.Errorf("root attrs = %+v", rootRec.Attrs)
	}
	if len(recs[0].Attrs) != 1 || recs[0].Attrs[0] != (Attr{Key: "shard", Value: "0"}) {
		t.Errorf("decode attrs = %+v", recs[0].Attrs)
	}
	if recs[0].Duration != 2*time.Millisecond {
		t.Errorf("decode duration = %v, want 2ms", recs[0].Duration)
	}
}

func TestChildAtBackdatesDwell(t *testing.T) {
	clk := NewManualClock(time.Date(2026, 1, 1, 0, 0, 10, 0, time.UTC))
	reg := NewRegistry(clk)
	tr := NewTracer(reg, 16)

	root := tr.Start("record")
	eventTime := clk.Now().Add(-3 * time.Second)
	dwell := root.ChildAt("ingest", eventTime)
	dwell.End()
	root.End()

	recs := tr.Recent()
	if len(recs) != 2 || recs[0].Name != "ingest" {
		t.Fatalf("spans = %+v", recs)
	}
	if !recs[0].Start.Equal(eventTime) || recs[0].Duration != 3*time.Second {
		t.Errorf("dwell span start=%v duration=%v, want start=eventTime duration=3s",
			recs[0].Start, recs[0].Duration)
	}
}

// TestRecentWraparoundOldestFirst pins the flight-recorder ordering
// contract: after the ring wraps, Recent still returns spans in completion
// order, oldest first.
func TestRecentWraparoundOldestFirst(t *testing.T) {
	reg := NewRegistry(NewManualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)))
	tr := NewTracer(reg, 16)
	for i := 0; i < 25; i++ {
		tr.Start("s").End()
	}
	recs := tr.Recent()
	if len(recs) != 16 {
		t.Fatalf("ring retained %d spans, want 16", len(recs))
	}
	// 25 spans completed; the ring holds the last 16, IDs 10..25 ascending.
	for i, rec := range recs {
		if want := int64(10 + i); rec.ID != want {
			t.Fatalf("recs[%d].ID = %d, want %d (oldest-first across wraparound)", i, rec.ID, want)
		}
	}
}

func TestZeroSpanTreeNoops(t *testing.T) {
	var zero Span
	child := zero.Child("decode")
	grand := child.ChildAt("ingest", time.Now(), Attr{Key: "k", Value: "v"})
	if child.ID() != 0 || grand.ID() != 0 {
		t.Error("children of the zero span must be zero spans")
	}
	grand.End()
	child.End()
	zero.End() // must not panic

	var nilTracer *Tracer
	if sp := nilTracer.StartSpan("x", Attr{Key: "k", Value: "v"}); sp.ID() != 0 {
		t.Error("nil tracer must hand out the zero span")
	}
	if recs := nilTracer.Recent(); recs != nil {
		t.Errorf("nil tracer Recent = %v, want nil", recs)
	}
}
