package obs

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and safe on a nil receiver (no-op), so handles
// resolved from a nil Registry cost one predictable branch per update.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored; counters only go
// up — use a Gauge for values that move both ways).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous float metric (queue depth, ratio, watermark).
// Safe for concurrent use and nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Max raises the gauge to v if v exceeds the current reading — a
// monotone high-water mark within one reset window. Freshness watermarks
// ("lag.<stage>.max_seconds") use it: concurrent observers race only
// upward, so the gauge converges on the true maximum.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) reset() { g.bits.Store(0) }

// Histogram is a fixed-bucket distribution metric. Bucket bounds are upper
// bounds in ascending order; an implicit +Inf bucket catches the overflow.
// Observations update atomics only, so concurrent Observe calls never
// block each other. Snapshots taken concurrently with observations are
// internally consistent per field but may be mid-update across fields —
// acceptable for monitoring, which is the only consumer.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// observeN records the same value n times in one bucket update — the bulk
// path for re-binning external histograms (runtime GC pauses), where per-
// observation loops would scale with the process's GC history.
func (h *Histogram) observeN(v float64, n int64) {
	if h == nil || n <= 0 || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

func (h *Histogram) snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{
		Name:   name,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// LatencyBuckets returns the default duration buckets (seconds), spanning
// 10µs to ~80s in powers of two — wide enough for both per-record costs
// and whole-stage timings.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 24)
	for v := 10e-6; v < 100; v *= 2 {
		out = append(out, v)
	}
	return out
}

// SizeBuckets returns the default byte-size buckets, 64 B to 64 MB in
// powers of four.
func SizeBuckets() []float64 {
	out := make([]float64, 0, 11)
	for v := 64.0; v <= 64<<20; v *= 4 {
		out = append(out, v)
	}
	return out
}

// CounterSnapshot is one counter reading.
type CounterSnapshot struct {
	Name  string
	Value int64
}

// GaugeSnapshot is one gauge reading.
type GaugeSnapshot struct {
	Name  string
	Value float64
}

// HistogramSnapshot is a value-type copy of a histogram: mergeable across
// workers or runs, and queryable for mean and quantile estimates.
type HistogramSnapshot struct {
	Name   string
	Bounds []float64 // ascending upper bounds
	Counts []int64   // len(Bounds)+1; last is the +Inf overflow bucket
	Count  int64
	Sum    float64
}

// clone returns a deep copy that shares no slices with the receiver, so
// merged snapshots never alias their inputs.
func (h HistogramSnapshot) clone() HistogramSnapshot {
	h.Bounds = append([]float64(nil), h.Bounds...)
	h.Counts = append([]int64(nil), h.Counts...)
	return h
}

// Merge returns the element-wise sum of two snapshots of the same shape.
func (h HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if len(h.Bounds) != len(o.Bounds) {
		return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with different bucket counts (%d vs %d)", len(h.Bounds), len(o.Bounds))
	}
	for i := range h.Bounds {
		if h.Bounds[i] != o.Bounds[i] {
			return HistogramSnapshot{}, fmt.Errorf("obs: merging histograms with different bounds at %d (%g vs %g)", i, h.Bounds[i], o.Bounds[i])
		}
	}
	out := HistogramSnapshot{
		Name:   h.Name,
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: make([]int64, len(h.Counts)),
		Count:  h.Count + o.Count,
		Sum:    h.Sum + o.Sum,
	}
	for i := range h.Counts {
		out.Counts[i] = h.Counts[i] + o.Counts[i]
	}
	return out, nil
}

// Mean returns the average observation, or NaN when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return math.NaN()
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) assuming a uniform
// distribution within each bucket. Returns NaN when empty. Values in the
// overflow bucket report the largest finite bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= rank && c > 0 {
			if i >= len(h.Bounds) {
				// Overflow bucket: the best available estimate is the
				// largest finite bound.
				if len(h.Bounds) == 0 {
					return math.NaN()
				}
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			hi := h.Bounds[i]
			frac := (rank - (cum - float64(c))) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	if len(h.Bounds) == 0 {
		return math.NaN()
	}
	return h.Bounds[len(h.Bounds)-1]
}
