package obs

import (
	"context"
	"io"
	"log/slog"
	"strings"
)

// Structured logging for the pipeline. The conventions mirror the metric
// layer: one shared *slog.Logger is threaded through core/msg/stream/
// checkpoint via options, every component tags its lines with a "component"
// attr, and span-correlated lines carry the span's ID under "span" so a log
// line can be matched against the /traces dump of the admin server. A
// disabled logger is NopLogger(), whose handler rejects every level before
// any attr is materialised, so instrumented code logs unconditionally.

// NewLogger builds a logger writing to w. Format is "json" for
// slog.JSONHandler or anything else (conventionally "text") for
// slog.TextHandler. Level bounds the emitted records.
func NewLogger(w io.Writer, format string, level slog.Leveler) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if strings.EqualFold(format, "json") {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel maps a -log-level flag value to a slog.Level, defaulting to
// Info for unknown names.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// nopHandler drops everything before formatting.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// NopLogger returns a logger that discards every record. Components default
// to it so logging, like metrics, is free when not wired up.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }

// Component derives a tagged child logger; nil yields NopLogger so callers
// can thread an optional logger without branches.
func Component(l *slog.Logger, name string) *slog.Logger {
	if l == nil {
		return NopLogger()
	}
	return l.With(slog.String("component", name))
}
