// Package obs is the pipeline-wide observability layer: a Registry of
// counters, gauges and fixed-bucket histograms with mergeable value-type
// snapshots, plus lightweight span tracing for per-stage timings. It is
// built exclusively on the standard library.
//
// Design constraints, in order:
//
//   - Instrumentation must never perturb pipeline output. Metrics are
//     read-only observers; nothing in this package feeds back into operator
//     state, and metric state is deliberately NOT checkpointed — recovery
//     calls Registry.Reset so post-restore readings cover exactly the
//     replayed span (see internal/core).
//   - Time is injected. Every component that needs a timestamp reads it
//     from a Clock carried by the Registry, never from time.Now directly,
//     so instrumented code stays compatible with the determinism lint
//     analyzer and with byte-identical checkpoint replay. The obsclock
//     analyzer in internal/lint enforces this.
//   - Disabled must be (nearly) free. Every metric handle is nil-safe: a
//     nil *Counter, *Gauge, *Histogram, *Registry or *Tracer accepts the
//     full API as a no-op, so instrumented packages write straight-line
//     code with no "is monitoring on?" branches.
//   - Hot-path updates are lock-free. Counters, gauges and histogram
//     buckets are atomics; the registry mutex is only taken when resolving
//     a metric by name (done once, at instrumentation time) and when
//     snapshotting.
package obs

import (
	"sync"
	"time"
)

// Clock supplies timestamps to instrumentation. Production code uses
// WallClock; tests and replay-sensitive drills inject a ManualClock so
// rates and timings are reproducible.
type Clock interface {
	Now() time.Time
}

// WallClock reads the system clock. It is the single sanctioned wall-clock
// source for instrumented packages: everything else must go through an
// injected Clock so that replacing it replaces every timestamp at once.
type WallClock struct{}

// Now returns the current wall-clock time.
func (WallClock) Now() time.Time {
	//lint:ignore obsclock WallClock is the one sanctioned wall-clock reader behind the Clock interface
	return time.Now()
}

// ManualClock is a settable Clock for tests and deterministic drills. The
// zero value starts at the zero time; use NewManualClock to seed it.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewManualClock returns a clock frozen at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{t: start}
}

// Now returns the clock's current (frozen) time.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// Set jumps the clock to t.
func (c *ManualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = t
}
