package obs

import (
	"testing"
	"time"
)

func TestEventLagClamp(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 10, 0, time.UTC)
	if got := EventLag(now, now.Add(-4*time.Second)); got != 4 {
		t.Errorf("EventLag past event = %v, want 4", got)
	}
	// An event from the "future" (skewed source clock, simulated time) is
	// fresh, not negatively late.
	if got := EventLag(now, now.Add(3*time.Second)); got != 0 {
		t.Errorf("EventLag future event = %v, want 0 (clamped)", got)
	}
}

func TestLagStageObserveAndWatermark(t *testing.T) {
	clk := NewManualClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	reg := NewRegistry(clk)
	lag := NewLagStage(reg, "decode")

	now := clk.Now()
	lag.Observe(now, now.Add(-2*time.Second))
	lag.Observe(now, now.Add(-5*time.Second))
	lag.Observe(now, now.Add(-1*time.Second))

	s := reg.Snapshot()
	h, ok := s.Histogram("lag.decode.seconds")
	if !ok || h.Count != 3 {
		t.Fatalf("lag.decode.seconds count = %+v, want 3 observations", h)
	}
	mark, ok := s.Gauge("lag.decode.max_seconds")
	if !ok || mark != 5 {
		t.Errorf("lag.decode.max_seconds = %v, want 5 (the watermark keeps the max)", mark)
	}
	// A fresher observation must not lower the watermark.
	lag.Observe(now, now.Add(-100*time.Millisecond))
	if mark, _ := reg.Snapshot().Gauge("lag.decode.max_seconds"); mark != 5 {
		t.Errorf("watermark dropped to %v after a fresh record, want 5", mark)
	}
}

func TestGaugeMax(t *testing.T) {
	reg := NewRegistry(nil)
	g := reg.Gauge("g")
	g.Set(5)
	g.Max(3)
	if v, _ := reg.Snapshot().Gauge("g"); v != 5 {
		t.Errorf("Max(3) lowered the gauge to %v", v)
	}
	g.Max(7)
	if v, _ := reg.Snapshot().Gauge("g"); v != 7 {
		t.Errorf("Max(7) = %v, want 7", v)
	}
}

func TestMergeWatermarkGaugesTakeMax(t *testing.T) {
	a := NewRegistry(nil)
	b := NewRegistry(nil)
	a.Gauge("lag.decode.max_seconds").Set(2)
	b.Gauge("lag.decode.max_seconds").Set(5)
	a.Gauge("plain").Set(2)
	b.Gauge("plain").Set(5)

	m := a.Snapshot().Merge(b.Snapshot())
	if v, _ := m.Gauge("lag.decode.max_seconds"); v != 5 {
		t.Errorf(".max_seconds merged to %v, want max 5", v)
	}
	// Merge the other way round: max is order-independent…
	m2 := b.Snapshot().Merge(a.Snapshot())
	if v, _ := m2.Gauge("lag.decode.max_seconds"); v != 5 {
		t.Errorf(".max_seconds merged (reversed) to %v, want max 5", v)
	}
	// …while plain gauges keep last-wins.
	if v, _ := m.Gauge("plain"); v != 5 {
		t.Errorf("plain gauge merged to %v, want last-wins 5", v)
	}
}

func TestSamplerDeterministic(t *testing.T) {
	s := NewSampler(4)
	var first []bool
	for i := 0; i < 10; i++ {
		first = append(first, s.Admit())
	}
	if s.Seen() != 10 {
		t.Errorf("Seen = %d, want 10", s.Seen())
	}
	// Replay after Reset must reproduce the decision sequence bit for bit.
	s.Reset()
	for i, want := range first {
		if got := s.Admit(); got != want {
			t.Fatalf("replayed decision %d = %v, want %v", i, got, want)
		}
	}
	// The first admission is sampled, then every 4th.
	want := []bool{true, false, false, false, true, false, false, false, true, false}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("decision sequence = %v, want %v", first, want)
		}
	}
}

func TestSamplerDisabledAndNil(t *testing.T) {
	if s := NewSampler(0); s != nil {
		t.Error("NewSampler(0) must return nil (sampling off)")
	}
	var s *Sampler
	if s.Admit() || s.Seen() != 0 {
		t.Error("nil sampler must never admit")
	}
	s.Reset() // must not panic
}

func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry(nil)
	rs := NewRuntimeSampler(reg)
	rs.Sample()
	s := reg.Snapshot()
	if v, ok := s.Gauge("runtime.goroutines"); !ok || v < 1 {
		t.Errorf("runtime.goroutines = %v, want >= 1", v)
	}
	if v, ok := s.Gauge("runtime.heap_alloc_bytes"); !ok || v <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %v, want > 0", v)
	}
	if v, ok := s.Gauge("runtime.heap_sys_bytes"); !ok || v <= 0 {
		t.Errorf("runtime.heap_sys_bytes = %v, want > 0", v)
	}
	if _, ok := s.Histogram("runtime.gc_pause.seconds"); !ok {
		t.Error("runtime.gc_pause.seconds histogram missing")
	}
	// Re-sampling must not double-count GC pauses: the pause histogram
	// tracks the cumulative runtime distribution by delta.
	h1, _ := s.Histogram("runtime.gc_pause.seconds")
	rs.Sample()
	h2, _ := reg.Snapshot().Histogram("runtime.gc_pause.seconds")
	if h2.Count < h1.Count {
		t.Errorf("gc pause count went backwards: %d -> %d", h1.Count, h2.Count)
	}
}

func TestRuntimeSamplerNilRegistry(t *testing.T) {
	rs := NewRuntimeSampler(nil)
	if rs != nil {
		t.Error("NewRuntimeSampler(nil) must return nil")
	}
	rs.Sample() // must not panic
}
