package admin

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"datacron/internal/health"
	"datacron/internal/obs"
	"datacron/internal/obs/export"
	"datacron/internal/obs/slo"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// start spins up a fully wired admin server on a loopback ephemeral port
// and returns its pieces plus a cleanup-registered base URL.
func start(t *testing.T) (*obs.ManualClock, *obs.Registry, *obs.Tracer, *health.Watchdog, string) {
	t.Helper()
	clk := obs.NewManualClock(epoch)
	reg := obs.NewRegistry(clk)
	tr := obs.NewTracer(reg, 16)
	w := health.NewWatchdog(reg, health.Config{})
	srv := New(Config{Addr: "127.0.0.1:0", Registry: reg, Tracer: tr, Watchdog: w})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return clk, reg, tr, w, "http://" + srv.Addr()
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMetricsEndpoint(t *testing.T) {
	clk, reg, _, _, base := start(t)
	reg.Counter("core.records").Add(420)
	reg.Gauge("msg.depth.surveillance.raw").Set(7)
	clk.Advance(10 * time.Second)

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != export.ContentType {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE core_records_total counter",
		"core_records_total 420",
		"core_records_per_second 42",
		`msg_depth{topic="surveillance.raw"} 7`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestStatzEndpoint(t *testing.T) {
	clk, reg, _, _, base := start(t)
	reg.Counter("core.records").Add(100)
	clk.Advance(time.Second)

	code, body, hdr := get(t, base+"/statz")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
	var s export.SnapshotJSON
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("statz is not a snapshot: %v\n%s", err, body)
	}
	if len(s.Counters) != 1 || s.Counters[0].Value != 100 || s.Counters[0].RatePerSec != 100 {
		t.Fatalf("statz counters = %+v", s.Counters)
	}
}

func TestProbesFollowWatchdog(t *testing.T) {
	clk, reg, _, w, base := start(t)

	// Before any tick: ready and live by default.
	if code, _, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz pre-tick = %d", code)
	}
	if code, _, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz pre-tick = %d", code)
	}

	// Inject a stalled watermark: input advances, watermark frozen.
	reg.Counter("core.records").Add(10)
	reg.Gauge("core.watermark.unixsec").Set(float64(epoch.Unix()))
	w.Tick()
	clk.Advance(time.Second)
	reg.Counter("core.records").Add(10)
	w.Tick() // ONE tick after the fault

	code, body, _ := get(t, base+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with stalled watermark = %d, want 503", code)
	}
	var probe struct {
		Live       bool            `json:"live"`
		Ready      bool            `json:"ready"`
		Components []health.Result `json:"components"`
	}
	if err := json.Unmarshal([]byte(body), &probe); err != nil {
		t.Fatalf("readyz body: %v\n%s", err, body)
	}
	if probe.Ready || probe.Live || len(probe.Components) == 0 {
		t.Fatalf("probe body = %+v", probe)
	}
	if code, _, _ := get(t, base+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with stalled watermark = %d, want 503", code)
	}

	// Watermark recovers; probes flip back on the next tick.
	clk.Advance(time.Second)
	reg.Counter("core.records").Add(10)
	reg.Gauge("core.watermark.unixsec").Set(float64(epoch.Unix()) + 2)
	w.Tick()
	if code, _, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after recovery = %d", code)
	}
}

func TestTracesEndpoint(t *testing.T) {
	clk, _, tr, _, base := start(t)
	sp := tr.Start("poll")
	clk.Advance(250 * time.Millisecond)
	sp.End()

	code, body, _ := get(t, base+"/traces")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var out struct {
		Spans []struct {
			ID              int64   `json:"id"`
			Name            string  `json:"name"`
			DurationSeconds float64 `json:"durationSeconds"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("traces body: %v\n%s", err, body)
	}
	if len(out.Spans) != 1 || out.Spans[0].Name != "poll" || out.Spans[0].ID == 0 || out.Spans[0].DurationSeconds != 0.25 {
		t.Fatalf("spans = %+v", out.Spans)
	}
}

// TestTracesSpanTreeEndpoint drives a sampled record tree through the ring
// and reads it back both flat (parent links and attrs on every span) and
// nested (?span_tree=1 reconstructs the hierarchy, children in completion
// order).
func TestTracesSpanTreeEndpoint(t *testing.T) {
	clk, _, tr, _, base := start(t)
	root := tr.StartSpan("record", obs.Attr{Key: "mover", Value: "m1"})
	clk.Advance(time.Millisecond)
	decode := root.Child("decode", obs.Attr{Key: "shard", Value: "0"})
	clk.Advance(2 * time.Millisecond)
	decode.End()
	root.Child("emit").End()
	root.End()

	// Flat view: completion order, parent IDs and attrs on the wire.
	code, body, _ := get(t, base+"/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces = %d", code)
	}
	var flat struct {
		Spans []export.SpanJSON `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &flat); err != nil {
		t.Fatalf("traces body: %v\n%s", err, body)
	}
	if len(flat.Spans) != 3 || flat.Spans[2].Name != "record" {
		t.Fatalf("flat spans = %+v", flat.Spans)
	}
	if flat.Spans[0].Parent != flat.Spans[2].ID || flat.Spans[0].Attrs["shard"] != "0" {
		t.Fatalf("flat decode span lost parent or attrs: %+v", flat.Spans[0])
	}

	// Nested view: one root with both children under it.
	code, body, _ = get(t, base+"/traces?span_tree=1")
	if code != http.StatusOK {
		t.Fatalf("/traces?span_tree=1 = %d", code)
	}
	var nested struct {
		SpanTrees []*export.SpanJSON `json:"spanTrees"`
	}
	if err := json.Unmarshal([]byte(body), &nested); err != nil {
		t.Fatalf("span_tree body: %v\n%s", err, body)
	}
	if len(nested.SpanTrees) != 1 {
		t.Fatalf("got %d roots, want 1:\n%s", len(nested.SpanTrees), body)
	}
	tree := nested.SpanTrees[0]
	if tree.Name != "record" || tree.Attrs["mover"] != "m1" || len(tree.Children) != 2 {
		t.Fatalf("tree = %+v", tree)
	}
	if tree.Children[0].Name != "decode" || tree.Children[1].Name != "emit" {
		t.Fatalf("children out of completion order: %s, %s",
			tree.Children[0].Name, tree.Children[1].Name)
	}
	if tree.Children[0].DurationSeconds != 0.002 {
		t.Errorf("decode duration = %v, want 0.002", tree.Children[0].DurationSeconds)
	}
}

// TestTracesWraparoundOldestFirst pins the endpoint's ordering contract:
// after the ring wraps, /traces still serves completion order, oldest span
// first.
func TestTracesWraparoundOldestFirst(t *testing.T) {
	_, _, tr, _, base := start(t) // ring size 16
	for i := 0; i < 25; i++ {
		tr.Start("s").End()
	}
	_, body, _ := get(t, base+"/traces")
	var out struct {
		Spans []export.SpanJSON `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Spans) != 16 {
		t.Fatalf("served %d spans, want the full 16-span ring", len(out.Spans))
	}
	for i, sp := range out.Spans {
		if want := int64(10 + i); sp.ID != want {
			t.Fatalf("spans[%d].ID = %d, want %d (oldest-first across wraparound)", i, sp.ID, want)
		}
	}
}

// TestSLOEndpoint checks both shapes of /slo: an empty objectives array
// when no tracker is wired, and the full standing when one is.
func TestSLOEndpoint(t *testing.T) {
	_, _, _, _, base := start(t) // no SLO source configured
	code, body, hdr := get(t, base+"/slo")
	if code != http.StatusOK || !strings.HasPrefix(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("/slo without source = %d, content type %q", code, hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, `"objectives": []`) {
		t.Fatalf("/slo without source must serve an empty array:\n%s", body)
	}

	reg := obs.NewRegistry(obs.NewManualClock(epoch))
	srv := New(Config{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		SLO: func() []slo.Status {
			return []slo.Status{{
				Name: "predict-freshness", Family: "lag.predict.seconds",
				Quantile: 0.99, ThresholdSeconds: 5, WindowSeconds: 60,
				Current: 7.25, Violated: true, Windows: 4, Violations: 1,
				Streak: 1, BudgetBurn: 0.25,
			}}
		},
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	_, body, _ = get(t, "http://"+srv.Addr()+"/slo")
	var doc struct {
		Objectives []slo.Status `json:"objectives"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/slo body: %v\n%s", err, body)
	}
	if len(doc.Objectives) != 1 {
		t.Fatalf("objectives = %+v", doc.Objectives)
	}
	st := doc.Objectives[0]
	if st.Name != "predict-freshness" || !st.Violated || st.BudgetBurn != 0.25 || st.Current != 7.25 {
		t.Fatalf("objective round-trip lost fields: %+v", st)
	}
}

// TestMetricsIncludeRuntime checks the scrape-sampled process self-metrics
// ride the same exposition as the pipeline metrics.
func TestMetricsIncludeRuntime(t *testing.T) {
	_, _, _, _, base := start(t)
	_, body, _ := get(t, base+"/metrics")
	for _, want := range []string{
		"runtime_goroutines",
		"runtime_heap_alloc_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestPprofAndIndex(t *testing.T) {
	_, _, _, _, base := start(t)
	if code, body, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index = %d", code)
	}
	if code, body, _ := get(t, base+"/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d\n%s", code, body)
	}
	if code, _, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

func TestStatzOverrideAndNilSafety(t *testing.T) {
	reg := obs.NewRegistry(obs.NewManualClock(epoch))
	srv := New(Config{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Statz:    func() any { return map[string]string{"custom": "payload"} },
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	base := "http://" + srv.Addr()
	if _, body, _ := get(t, base+"/statz"); !strings.Contains(body, `"custom": "payload"`) {
		t.Fatalf("statz override not served:\n%s", body)
	}
	// Nil tracer and watchdog degrade gracefully.
	if code, body, _ := get(t, base+"/traces"); code != http.StatusOK || !strings.Contains(body, `"spans": []`) {
		t.Fatalf("traces with nil tracer = %d\n%s", code, body)
	}
	if code, _, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz with nil watchdog = %d", code)
	}

	var nilSrv *Server
	if nilSrv.Addr() != "" || nilSrv.Shutdown(context.Background()) != nil {
		t.Fatal("nil server must be a benign no-op")
	}
}

func TestShutdownUnblocksStart(t *testing.T) {
	reg := obs.NewRegistry(obs.NewManualClock(epoch))
	srv := New(Config{Addr: "127.0.0.1:0", Registry: reg})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
	// Shutdown before Start is a no-op.
	if err := New(Config{Addr: "127.0.0.1:0", Registry: reg}).Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotOverride pins the Config.Snapshot hook the sharded pipeline
// uses: /metrics and the default /statz payload must read the metric state
// through the override (the merged main+per-shard view) rather than the
// raw registry.
func TestSnapshotOverride(t *testing.T) {
	clk := obs.NewManualClock(epoch)
	reg := obs.NewRegistry(clk)
	reg.Counter("core.records").Add(10)
	shardReg := obs.NewRegistry(obs.NewManualClock(epoch))
	shardReg.Counter("core.records").Add(32)

	srv := New(Config{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Snapshot: func() obs.Snapshot {
			return reg.Snapshot().Merge(shardReg.Snapshot().Prefixed("shard.0."))
		},
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	base := "http://" + srv.Addr()

	_, body, _ := get(t, base+"/metrics")
	if !strings.Contains(body, "shard_0_core_records") {
		t.Errorf("/metrics missing the override's per-shard series:\n%s", body)
	}
	_, body, _ = get(t, base+"/statz")
	var statz map[string]any
	if err := json.Unmarshal([]byte(body), &statz); err != nil {
		t.Fatalf("statz not JSON: %v", err)
	}
	if !strings.Contains(body, "shard.0.core.records") {
		t.Errorf("/statz missing the override's per-shard counter:\n%s", body)
	}
}
