// Package admin serves the pipeline's operational plane over HTTP: the
// Prometheus exposition of the metric registry, a JSON statistics dump,
// health and readiness probes backed by the health.Watchdog, recent trace
// spans, and the standard pprof profilers. The server is deliberately
// separate from the data path — it owns its own mux (never the process-wide
// http.DefaultServeMux, which pprof's import side effects would pollute),
// binds its own listener, and carries explicit timeouts so a stuck scrape
// cannot pin a connection forever.
package admin

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"datacron/internal/health"
	"datacron/internal/obs"
	"datacron/internal/obs/export"
	"datacron/internal/obs/slo"
)

// Config wires the server to the observability plane. Registry is the only
// required field; nil Tracer/Watchdog degrade the matching endpoints to
// empty-but-valid responses, so the server is usable at any stage of
// pipeline construction.
type Config struct {
	// Addr is the listen address, e.g. ":9090" or "127.0.0.1:0".
	Addr string
	// Registry backs /metrics and the default /statz payload.
	Registry *obs.Registry
	// Snapshot overrides how /metrics (and the default /statz) read the
	// metric state; nil reads Registry.Snapshot directly. The sharded
	// pipeline supplies its merged view here — main registry plus every
	// shard worker's registry, aggregate and per-shard labelled.
	Snapshot func() obs.Snapshot
	// Tracer backs /traces; nil serves an empty span list.
	Tracer *obs.Tracer
	// Watchdog backs /healthz and /readyz; nil reports always live/ready.
	Watchdog *health.Watchdog
	// Statz overrides the /statz payload; nil serves the registry snapshot
	// in its JSON form.
	Statz func() any
	// SLO backs /slo with the freshness objectives' standing; nil serves an
	// empty objective list.
	SLO func() []slo.Status
	// Metrics configures the Prometheus renderer; nil uses DefaultMapping
	// with per-second rates enabled.
	Metrics *export.Options
	// Logger receives serve/shutdown events; nil logs nowhere.
	Logger *slog.Logger
}

// Server is the admin HTTP server. Create with New, then Start; Addr
// reports the bound address (useful with ":0"), Shutdown drains it.
type Server struct {
	cfg     Config
	srv     *http.Server
	log     *slog.Logger
	runtime *obs.RuntimeSampler // refreshed on every metric read; nil without a registry

	mu sync.Mutex
	ln net.Listener
}

// New builds the server and its routes without binding the listener.
func New(cfg Config) *Server {
	s := &Server{
		cfg: cfg,
		log: obs.Component(cfg.Logger, "admin"),
		// Runtime self-metrics (goroutines, heap, GC pauses) live in the
		// admin plane: they are sampled on scrape, so an unscrapped
		// pipeline pays nothing for them.
		runtime: obs.NewRuntimeSampler(cfg.Registry),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{
		Handler: mux,
		// WriteTimeout stays 0: /debug/pprof/profile legitimately streams
		// for ?seconds=N. The header timeout still bounds slow clients.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       time.Minute,
	}
	return s
}

// Start binds the configured address and serves in a background goroutine.
// It returns the bind error synchronously; serve errors after a clean
// Shutdown are swallowed, anything else is logged.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.log.Info("admin server listening", "addr", ln.Addr().String())
	//lint:ignore goroleak joined through http.Server: Stop calls srv.Shutdown, which makes Serve return ErrServerClosed and the goroutine exit
	go func() {
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.log.Error("admin server failed", "err", err)
		}
	}()
	return nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully drains the server. Safe on a nil server or before
// Start.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	started := s.ln != nil
	s.mu.Unlock()
	if !started {
		return nil
	}
	s.log.Info("admin server shutting down")
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(`datacron admin endpoints:
  /metrics       Prometheus text exposition (v0.0.4)
  /statz         metrics snapshot as JSON
  /healthz       liveness probe (component report as JSON)
  /readyz        readiness probe (component report as JSON)
  /traces        recent trace spans as JSON (?span_tree=1 nests by parent)
  /slo           freshness objectives' standing as JSON
  /debug/pprof/  Go profiler index
`))
}

// snapshot reads the metric state through the configured override, falling
// back to the registry. Runtime self-metrics are refreshed first so every
// scrape sees current goroutine/heap/GC readings.
func (s *Server) snapshot() obs.Snapshot {
	s.runtime.Sample()
	if s.cfg.Snapshot != nil {
		return s.cfg.Snapshot()
	}
	return s.cfg.Registry.Snapshot()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	opts := export.Options{Rates: true}
	if s.cfg.Metrics != nil {
		opts = *s.cfg.Metrics
	}
	w.Header().Set("Content-Type", export.ContentType)
	if err := export.WritePrometheus(w, s.snapshot(), opts); err != nil {
		s.log.Error("metrics render failed", "err", err)
	}
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	var payload any
	if s.cfg.Statz != nil {
		payload = s.cfg.Statz()
	} else {
		payload = export.JSONSnapshot(s.snapshot())
	}
	writeJSON(w, http.StatusOK, payload)
}

// probeBody is the JSON payload of /healthz and /readyz.
type probeBody struct {
	Live       bool            `json:"live"`
	Ready      bool            `json:"ready"`
	Components []health.Result `json:"components,omitempty"`
}

func (s *Server) probe(w http.ResponseWriter, pass bool) {
	status := http.StatusOK
	if !pass {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, probeBody{
		Live:       s.cfg.Watchdog.Live(),
		Ready:      s.cfg.Watchdog.Ready(),
		Components: s.cfg.Watchdog.Report(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.probe(w, s.cfg.Watchdog.Live())
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.probe(w, s.cfg.Watchdog.Ready())
}

// handleTraces serves the flight-recorder ring. The default view is the
// flat span list in completion order, oldest first — the Tracer.Recent
// ordering contract, stable across ring wraparound — with parent IDs and
// attrs included. With ?span_tree=1 the same spans are nested by parent
// linkage instead: each root (a "record" span, or any span whose parent
// fell off the ring) carries its surviving descendants.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	recent := s.cfg.Tracer.Recent()
	if r.URL.Query().Get("span_tree") == "1" {
		trees := export.SpanTrees(recent)
		if trees == nil {
			trees = []*export.SpanJSON{}
		}
		writeJSON(w, http.StatusOK, struct {
			SpanTrees []*export.SpanJSON `json:"spanTrees"`
		}{trees})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Spans []export.SpanJSON `json:"spans"`
	}{export.JSONSpans(recent)})
}

// handleSLO serves the freshness objectives' standing. Without a
// configured SLO source the objective list is empty but the shape is the
// same, so dashboards can always scrape it.
func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	var objectives []slo.Status
	if s.cfg.SLO != nil {
		objectives = s.cfg.SLO()
	}
	if objectives == nil {
		objectives = []slo.Status{}
	}
	writeJSON(w, http.StatusOK, struct {
		Objectives []slo.Status `json:"objectives"`
	}{objectives})
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload)
}
