package cer

import (
	"math"

	"datacron/internal/geo"
	"datacron/internal/synopses"
)

// This file addresses the paper's "relationality" challenge: handling
// events with attributes through predicates like IsHeading(North), without
// a separate pre-processing step. A Classifier turns attributed events into
// pattern symbols by evaluating an ordered list of predicates; composing it
// with a Forecaster yields patterns such as
//
//	heading_north (heading_north + heading_east)* heading_south
//
// — the NorthToSouthReversal event of Section 6, where each turn event is
// "annotated with the vessel's heading".

// Predicate tests an attributed critical point.
type Predicate func(cp synopses.CriticalPoint) bool

// Rule maps a predicate to the symbol it emits.
type Rule struct {
	Symbol string
	Match  Predicate
}

// Classifier converts critical points into symbols using first-match
// rules; unclassified events map to the Default symbol (which should be in
// the pattern alphabet so the automaton can observe them).
type Classifier struct {
	Rules   []Rule
	Default string
}

// Classify returns the symbol for an event.
func (c *Classifier) Classify(cp synopses.CriticalPoint) string {
	for _, r := range c.Rules {
		if r.Match(cp) {
			return r.Symbol
		}
	}
	return c.Default
}

// Alphabet lists the symbols the classifier can emit (rules then default).
func (c *Classifier) Alphabet() []string {
	seen := map[string]bool{}
	var out []string
	add := func(s string) {
		if s != "" && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, r := range c.Rules {
		add(r.Symbol)
	}
	add(c.Default)
	return out
}

// IsType matches a critical-point type.
func IsType(t synopses.CriticalType) Predicate {
	return func(cp synopses.CriticalPoint) bool { return cp.Type == t }
}

// IsHeading matches events whose heading lies within tolerance degrees of
// the given cardinal direction — the paper's IsHeading(North) predicate.
func IsHeading(directionDeg, toleranceDeg float64) Predicate {
	return func(cp synopses.CriticalPoint) bool {
		return math.Abs(geo.AngleDiff(directionDeg, cp.Heading)) <= toleranceDeg
	}
}

// And conjoins predicates.
func And(ps ...Predicate) Predicate {
	return func(cp synopses.CriticalPoint) bool {
		for _, p := range ps {
			if !p(cp) {
				return false
			}
		}
		return true
	}
}

// HeadingReversalClassifier is the classifier behind the paper's
// NorthToSouthReversal pattern: ChangeInHeading events are split by the
// vessel's heading quadrant; everything else is "other".
func HeadingReversalClassifier(toleranceDeg float64) *Classifier {
	turn := IsType(synopses.ChangeInHeading)
	return &Classifier{
		Rules: []Rule{
			{Symbol: "heading_north", Match: And(turn, IsHeading(0, toleranceDeg))},
			{Symbol: "heading_east", Match: And(turn, IsHeading(90, toleranceDeg))},
			{Symbol: "heading_south", Match: And(turn, IsHeading(180, toleranceDeg))},
			{Symbol: "heading_west", Match: And(turn, IsHeading(270, toleranceDeg))},
		},
		Default: "other",
	}
}

// NorthToSouthReversalPattern is the paper's example pattern R =
// ChangeInHeadingNorth (ChangeInHeadingNorth + ChangeInHeadingEast)*
// ChangeInHeadingSouth over the HeadingReversalClassifier's alphabet.
func NorthToSouthReversalPattern() Pattern {
	return Seq(
		Sym("heading_north"),
		Star(Or(Sym("heading_north"), Sym("heading_east"))),
		Sym("heading_south"),
	)
}
