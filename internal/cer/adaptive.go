package cer

import (
	"math"
	"strings"
	"sync"
)

// AdaptiveModel is an m-th-order symbol model whose conditional counts decay
// exponentially, so the transition matrix tracks a non-stationary stream —
// the paper's closing challenge for the forecasting component ("the
// statistical properties of a stream may indeed change over time in which
// case we would need an efficient method for updating online the
// probabilistic model").
//
// Observe costs O(1); the decay is applied lazily per context using a
// global tick counter, so idle contexts need no touch-ups.
type AdaptiveModel struct {
	mu       sync.Mutex
	order    int
	alphabet []string
	decay    float64 // multiplicative decay per observation, e.g. 0.9995
	alpha    float64 // Laplace smoothing mass

	tick   int64
	counts map[string]*adaptiveRow
	ctx    []string
}

type adaptiveRow struct {
	lastTick int64
	counts   map[string]float64
	total    float64
}

// NewAdaptiveModel returns an adaptive model. halfLife gives the number of
// observations after which old evidence has half its weight.
func NewAdaptiveModel(alphabet []string, order int, halfLife int) *AdaptiveModel {
	if order < 0 {
		order = 0
	}
	if halfLife < 1 {
		halfLife = 1000
	}
	// decay^halfLife = 0.5  =>  decay = 0.5^(1/halfLife)
	decay := math.Pow(0.5, 1.0/float64(halfLife))
	return &AdaptiveModel{
		order:    order,
		alphabet: append([]string(nil), alphabet...),
		decay:    decay,
		alpha:    1,
		counts:   make(map[string]*adaptiveRow),
	}
}

// Observe feeds the next stream symbol, updating the rolling context and
// the decayed conditional counts.
func (m *AdaptiveModel) Observe(symbol string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick++
	if len(m.ctx) == m.order {
		key := strings.Join(m.ctx, "\x00")
		row, ok := m.counts[key]
		if !ok {
			row = &adaptiveRow{lastTick: m.tick, counts: make(map[string]float64)}
			m.counts[key] = row
		}
		row.decayTo(m.tick, m.decay)
		row.counts[symbol]++
		row.total++
	}
	if m.order > 0 {
		m.ctx = append(m.ctx, symbol)
		if len(m.ctx) > m.order {
			m.ctx = m.ctx[1:]
		}
	}
}

// decayTo applies the pending exponential decay for the elapsed ticks.
func (r *adaptiveRow) decayTo(tick int64, decay float64) {
	if elapsed := tick - r.lastTick; elapsed > 0 {
		f := math.Pow(decay, float64(elapsed))
		for k := range r.counts {
			r.counts[k] *= f
		}
		r.total *= f
	}
	r.lastTick = tick
}

// Order implements SymbolModel.
func (m *AdaptiveModel) Order() int { return m.order }

// Prob implements SymbolModel with Laplace smoothing over the decayed
// counts.
func (m *AdaptiveModel) Prob(next string, ctx []string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.Join(ctx, "\x00")
	row, ok := m.counts[key]
	if !ok {
		return 1 / float64(len(m.alphabet))
	}
	row.decayTo(m.tick, m.decay)
	return (row.counts[next] + m.alpha) / (row.total + m.alpha*float64(len(m.alphabet)))
}

// AdaptiveForecaster pairs a Forecaster with an AdaptiveModel and rebuilds
// the Pattern Markov Chain every rebuildEvery observations, keeping the
// forecasts aligned with the drifting stream at a bounded amortised cost.
type AdaptiveForecaster struct {
	pattern      Pattern
	alphabet     []string
	model        *AdaptiveModel
	theta        float64
	horizon      int
	rebuildEvery int

	f    *Forecaster
	seen int
}

// NewAdaptiveForecaster builds the adaptive engine.
func NewAdaptiveForecaster(p Pattern, alphabet []string, model *AdaptiveModel, horizon int, theta float64, rebuildEvery int) (*AdaptiveForecaster, error) {
	if rebuildEvery < 1 {
		rebuildEvery = 1000
	}
	f, err := NewForecaster(p, alphabet, model, horizon, theta)
	if err != nil {
		return nil, err
	}
	return &AdaptiveForecaster{
		pattern: p, alphabet: alphabet, model: model,
		theta: theta, horizon: horizon, rebuildEvery: rebuildEvery,
		f: f,
	}, nil
}

// Process feeds one symbol: the model learns online, the PMC is refreshed
// periodically, and the inner forecaster produces detections and forecasts.
func (a *AdaptiveForecaster) Process(symbol string) (detected bool, fc Forecast, ok bool) {
	a.model.Observe(symbol)
	a.seen++
	if a.seen%a.rebuildEvery == 0 {
		// Rebuild the PMC against the current transition estimates. The DFA
		// state and context survive; only the probabilities change.
		a.f.pmc = BuildPMC(a.f.dfa, a.model, a.horizon)
	}
	return a.f.Process(symbol)
}

// Reset clears the run state but keeps the learned model.
func (a *AdaptiveForecaster) Reset() {
	a.f.Reset()
	a.seen = 0
}
