package cer

import (
	"math"
	"strings"
	"testing"

	"datacron/internal/gen"
)

func TestParsePattern(t *testing.T) {
	cases := map[string]string{
		"a c c":                       "a c c",
		"a(b + c)*d":                  "a (b + c)* d",
		"north (north + east)* south": "north (north + east)* south",
		"a**":                         "a**",
		"(a b) + c":                   "(a b) + c",
	}
	for in, want := range cases {
		p, err := ParsePattern(in)
		if err != nil {
			t.Errorf("parse(%q): %v", in, err)
			continue
		}
		if got := p.String(); got != want {
			t.Errorf("parse(%q).String() = %q, want %q", in, got, want)
		}
	}
	bad := []string{"", "a +", "(a", "a)", "a (", "+", "a £"}
	for _, in := range bad {
		if _, err := ParsePattern(in); err == nil {
			t.Errorf("parse(%q) should fail", in)
		}
	}
}

func TestSymbols(t *testing.T) {
	p := mustParse(t, "a (b + c)* a")
	syms := Symbols(p)
	if len(syms) != 3 {
		t.Errorf("symbols = %v", syms)
	}
}

func mustParse(t *testing.T, s string) Pattern {
	t.Helper()
	p, err := ParsePattern(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFigure6DFA verifies the structure of the DFA for R = a c c over
// Σ = {a, b, c} shown in Figure 6(a): 4 states tracking the progress
// 0 (nothing) → 1 (a seen) → 2 (a c) → 3 (a c c, final).
func TestFigure6DFA(t *testing.T) {
	dfa, err := Compile(mustParse(t, "a c c"), []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if dfa.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", dfa.NumStates())
	}
	finals := 0
	for _, f := range dfa.Final {
		if f {
			finals++
		}
	}
	if finals != 1 {
		t.Fatalf("final states = %d, want 1", finals)
	}
	// Walk the canonical path.
	s0 := dfa.Start
	s1 := dfa.Step(s0, "a")
	s2 := dfa.Step(s1, "c")
	s3 := dfa.Step(s2, "c")
	if !dfa.Final[s3] || dfa.Final[s0] || dfa.Final[s1] || dfa.Final[s2] {
		t.Fatal("final flags wrong along acc path")
	}
	// 'a' always returns to the "a seen" state (Σ*R semantics).
	for _, from := range []int{s0, s1, s2, s3} {
		if dfa.Step(from, "a") != s1 {
			t.Errorf("a-transition from %d should go to the a-seen state", from)
		}
	}
	// 'b' resets to start.
	for _, from := range []int{s0, s1, s2, s3} {
		if dfa.Step(from, "b") != s0 {
			t.Errorf("b-transition from %d should reset", from)
		}
	}
}

func TestDFADetectionsOnStream(t *testing.T) {
	dfa, err := Compile(mustParse(t, "a c c"), []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	stream := strings.Split("b a c c a b a c c c", " ")
	dets := dfa.Run(stream)
	// Detections at indices 3 (a c c) and 8 (a c c); index 9 ('c' after a
	// detection) does not re-complete because the run must restart with 'a'.
	if len(dets) != 2 || dets[0] != 3 || dets[1] != 8 {
		t.Errorf("detections = %v, want [3 8]", dets)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(mustParse(t, "a z"), []string{"a", "b"}); err == nil {
		t.Error("unknown symbol should fail")
	}
	if _, err := Compile(mustParse(t, "a"), []string{"a", "a"}); err == nil {
		t.Error("duplicate alphabet should fail")
	}
}

func TestDisjunctionAndIteration(t *testing.T) {
	// The paper's reversal pattern shape: n (n + e)* s.
	dfa, err := Compile(mustParse(t, "n (n + e)* s"), []string{"n", "e", "s", "w"})
	if err != nil {
		t.Fatal(err)
	}
	accepts := func(s string) bool {
		dets := dfa.Run(strings.Split(s, " "))
		return len(dets) > 0 && dets[len(dets)-1] == len(strings.Split(s, " "))-1
	}
	for _, s := range []string{"n s", "n n e s", "n e n e s", "w n e s"} {
		if !accepts(s) {
			t.Errorf("should detect at end of %q", s)
		}
	}
	for _, s := range []string{"n e w s", "s", "n e"} {
		if accepts(s) {
			t.Errorf("should not detect at end of %q", s)
		}
	}
}

func TestLearnModelRecoversIID(t *testing.T) {
	// Order-0 model over a biased i.i.d. stream.
	src := gen.NewMarkovSource(3, []string{"a", "b"}, 0, 0.7)
	stream := src.Generate(100_000)
	m := LearnModel(stream, []string{"a", "b"}, 0, 1)
	pa := m.Prob("a", nil)
	want, _ := src.ConditionalProb(nil, "a")
	if math.Abs(pa-want) > 0.02 {
		t.Errorf("P(a) = %.3f, want %.3f", pa, want)
	}
	if m.Order() != 0 {
		t.Error("order wrong")
	}
}

func TestLearnModelOrder2(t *testing.T) {
	src := gen.NewMarkovSource(5, []string{"a", "b"}, 2, 0.8)
	stream := src.Generate(200_000)
	m := LearnModel(stream, []string{"a", "b"}, 2, 1)
	for _, ctx := range [][]string{{"a", "a"}, {"a", "b"}, {"b", "a"}, {"b", "b"}} {
		want, err := src.ConditionalProb(ctx, "a")
		if err != nil {
			t.Fatal(err)
		}
		got := m.Prob("a", ctx)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("P(a|%v) = %.3f, want %.3f", ctx, got, want)
		}
	}
}

func TestWaitingTimeDistributionIID(t *testing.T) {
	// Pattern R = a over Σ={a,b} with i.i.d. P(a)=p: the waiting time is
	// geometric: w(k) = (1-p)^(k-1) p. (Figure 7's machinery on the
	// simplest possible pattern.)
	dfa, err := Compile(mustParse(t, "a"), []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	p := 0.3
	model := fixedModel{probs: map[string]float64{"a": p, "b": 1 - p}}
	pmc := BuildPMC(dfa, model, 30)
	dist, err := pmc.WaitingTime(dfa.Start, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		want := math.Pow(1-p, float64(k)) * p
		if math.Abs(dist[k]-want) > 1e-9 {
			t.Errorf("w(%d) = %.6f, want %.6f", k+1, dist[k], want)
		}
	}
}

// fixedModel is an i.i.d. model with fixed probabilities.
type fixedModel struct{ probs map[string]float64 }

func (f fixedModel) Order() int                           { return 0 }
func (f fixedModel) Prob(next string, _ []string) float64 { return f.probs[next] }

func TestWaitingTimeSumsToOne(t *testing.T) {
	// With enough horizon, waiting-time mass approaches 1 for an ergodic
	// input (the pattern eventually completes).
	dfa, err := Compile(mustParse(t, "a c c"), []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	model := fixedModel{probs: map[string]float64{"a": 0.4, "b": 0.2, "c": 0.4}}
	pmc := BuildPMC(dfa, model, 400)
	for q := 0; q < dfa.NumStates(); q++ {
		dist, err := pmc.WaitingTime(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, w := range dist {
			sum += w
		}
		if sum < 0.999 || sum > 1.000001 {
			t.Errorf("state %d: waiting mass = %.6f", q, sum)
		}
	}
}

func TestForecastInterval(t *testing.T) {
	dist := []float64{0.1, 0.4, 0.3, 0.1, 0.1}
	s, e, p, ok := ForecastInterval(dist, 0.6)
	if !ok || s != 2 || e != 3 || p < 0.6 {
		t.Errorf("interval = (%d,%d,%.2f,%v), want (2,3,≥0.6,true)", s, e, p, ok)
	}
	// theta=0.95 needs nearly everything.
	s, e, _, ok = ForecastInterval(dist, 0.95)
	if !ok || s != 1 || e != 5 {
		t.Errorf("wide interval = (%d,%d,%v)", s, e, ok)
	}
	// Unreachable theta.
	if _, _, _, ok := ForecastInterval([]float64{0.1, 0.1}, 0.5); ok {
		t.Error("unreachable theta should return !ok")
	}
	// Single dominant step.
	s, e, _, ok = ForecastInterval([]float64{0.05, 0.9, 0.05}, 0.8)
	if !ok || s != 2 || e != 2 {
		t.Errorf("point interval = (%d,%d,%v)", s, e, ok)
	}
}

func TestForecasterEndToEnd(t *testing.T) {
	src := gen.NewMarkovSource(11, []string{"a", "b", "c"}, 1, 0.6)
	train := src.Generate(50_000)
	test := src.Generate(20_000)
	model := LearnModel(train, []string{"a", "b", "c"}, 1, 1)
	f, err := NewForecaster(mustParse(t, "a c c"), []string{"a", "b", "c"}, model, 500, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res := EvaluatePrecision(f, test)
	if res.Forecasts == 0 || res.Detections == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	// A θ=0.5 forecast should be right at least ~half the time when the
	// model matches the source.
	if res.Precision() < 0.45 {
		t.Errorf("precision %.3f below threshold-consistency bound", res.Precision())
	}
}

func TestNewForecasterValidation(t *testing.T) {
	model := fixedModel{probs: map[string]float64{"a": 1}}
	if _, err := NewForecaster(mustParse(t, "a"), []string{"a"}, model, 10, 0); err == nil {
		t.Error("theta=0 should fail")
	}
	if _, err := NewForecaster(mustParse(t, "a"), []string{"a"}, model, 10, 1); err == nil {
		t.Error("theta=1 should fail")
	}
	if _, err := NewForecaster(mustParse(t, "z"), []string{"a"}, model, 10, 0.5); err == nil {
		t.Error("alphabet mismatch should fail")
	}
}

// TestFigure8HigherOrderImprovesPrecision reproduces the shape of Figure 8:
// when the input stream is a 2nd-order Markov process, a 2nd-order PMC
// yields forecasts with precision at least as high as a 1st-order PMC,
// across thresholds.
func TestFigure8HigherOrderImprovesPrecision(t *testing.T) {
	alphabet := []string{"n", "e", "s", "w"}
	src := gen.NewMarkovSource(29, alphabet, 2, 0.85)
	train := src.Generate(200_000)
	test := src.Generate(50_000)
	pattern := mustParse(t, "n (n + e)* s")

	run := func(order int, theta float64) PrecisionResult {
		model := LearnModel(train, alphabet, order, 1)
		f, err := NewForecaster(pattern, alphabet, model, 60, theta)
		if err != nil {
			t.Fatal(err)
		}
		return EvaluatePrecision(f, test)
	}
	better, total := 0, 0
	for _, theta := range []float64{0.3, 0.5, 0.7} {
		p1 := run(1, theta)
		p2 := run(2, theta)
		t.Logf("theta=%.1f: order1=%.3f (n=%d) order2=%.3f (n=%d)",
			theta, p1.Precision(), p1.Forecasts, p2.Precision(), p2.Forecasts)
		if p1.Forecasts == 0 || p2.Forecasts == 0 {
			continue
		}
		total++
		if p2.Precision() >= p1.Precision()-0.02 {
			better++
		}
	}
	if total == 0 {
		t.Fatal("no thresholds produced forecasts")
	}
	if better < total {
		t.Errorf("order-2 should not lose to order-1: %d/%d thresholds ok", better, total)
	}
}

func TestPrecisionIncreasesWithTheta(t *testing.T) {
	// Higher confidence thresholds should not decrease precision (wider
	// intervals are easier to hit).
	alphabet := []string{"a", "b", "c"}
	src := gen.NewMarkovSource(7, alphabet, 1, 0.7)
	train := src.Generate(100_000)
	test := src.Generate(30_000)
	model := LearnModel(train, alphabet, 1, 1)
	pattern := mustParse(t, "a c c")
	var last float64 = -1
	for _, theta := range []float64{0.2, 0.5, 0.8} {
		f, err := NewForecaster(pattern, alphabet, model, 80, theta)
		if err != nil {
			t.Fatal(err)
		}
		res := EvaluatePrecision(f, test)
		if res.Forecasts == 0 {
			continue
		}
		p := res.Precision()
		if p < last-0.05 {
			t.Errorf("precision dropped sharply at theta=%.1f: %.3f < %.3f", theta, p, last)
		}
		last = p
	}
}
