package cer

import (
	"fmt"
	"sort"
	"strings"
)

// DFA is a complete deterministic automaton over an explicit alphabet. The
// compiled automaton recognises Σ*R (detection at any position of the
// stream), so consuming a stream symbol-by-symbol and checking Final at
// each step implements streaming detection, exactly as in Figure 6(a).
type DFA struct {
	Alphabet []string
	symIdx   map[string]int
	// Delta[state][symbol index] = next state.
	Delta [][]int
	Final []bool
	Start int
}

// NumStates returns the number of DFA states.
func (d *DFA) NumStates() int { return len(d.Delta) }

// Step returns the successor of state on symbol; unknown symbols keep the
// automaton in place (they cannot advance any pattern).
func (d *DFA) Step(state int, symbol string) int {
	i, ok := d.symIdx[symbol]
	if !ok {
		return state
	}
	return d.Delta[state][i]
}

// nfa is a Thompson-construction automaton with epsilon transitions.
type nfa struct {
	next  int
	eps   map[int][]int
	trans map[int]map[string][]int
}

func newNFA() *nfa {
	return &nfa{eps: map[int][]int{}, trans: map[int]map[string][]int{}}
}

func (n *nfa) state() int {
	s := n.next
	n.next++
	return s
}

func (n *nfa) addEps(from, to int) { n.eps[from] = append(n.eps[from], to) }

func (n *nfa) addSym(from int, sym string, to int) {
	if n.trans[from] == nil {
		n.trans[from] = map[string][]int{}
	}
	n.trans[from][sym] = append(n.trans[from][sym], to)
}

// build returns (start, accept) fragment states for p.
func (n *nfa) build(p Pattern) (int, int) {
	switch v := p.(type) {
	case SymPattern:
		s, a := n.state(), n.state()
		n.addSym(s, string(v), a)
		return s, a
	case SeqPattern:
		if len(v) == 0 {
			s := n.state()
			return s, s
		}
		start, acc := n.build(v[0])
		for _, q := range v[1:] {
			s2, a2 := n.build(q)
			n.addEps(acc, s2)
			acc = a2
		}
		return start, acc
	case OrPattern:
		s, a := n.state(), n.state()
		for _, q := range v {
			qs, qa := n.build(q)
			n.addEps(s, qs)
			n.addEps(qa, a)
		}
		return s, a
	case StarPattern:
		s, a := n.state(), n.state()
		is, ia := n.build(v.Inner)
		n.addEps(s, is)
		n.addEps(ia, is)
		n.addEps(s, a)
		n.addEps(ia, a)
		return s, a
	default:
		panic(fmt.Sprintf("cer: unknown pattern %T", p))
	}
}

// closure expands a state set with epsilon transitions.
func (n *nfa) closure(set map[int]bool) map[int]bool {
	stack := make([]int, 0, len(set))
	for s := range set {
		stack = append(stack, s)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range n.eps[s] {
			if !set[t] {
				set[t] = true
				stack = append(stack, t)
			}
		}
	}
	return set
}

// Compile builds the complete DFA of Σ*R over the given alphabet via subset
// construction. Every pattern symbol must be in the alphabet.
func Compile(p Pattern, alphabet []string) (*DFA, error) {
	inAlpha := map[string]bool{}
	for _, a := range alphabet {
		if inAlpha[a] {
			return nil, fmt.Errorf("cer: duplicate alphabet symbol %q", a)
		}
		inAlpha[a] = true
	}
	for _, s := range Symbols(p) {
		if !inAlpha[s] {
			return nil, fmt.Errorf("cer: pattern symbol %q not in alphabet", s)
		}
	}
	n := newNFA()
	// Σ* prefix: a start state that loops on every symbol and can enter R.
	loop := n.state()
	for _, a := range alphabet {
		n.addSym(loop, a, loop)
	}
	rs, ra := n.build(p)
	n.addEps(loop, rs)
	accept := ra

	// Subset construction.
	type key = string
	setKey := func(set map[int]bool) key {
		ids := make([]int, 0, len(set))
		for s := range set {
			ids = append(ids, s)
		}
		sort.Ints(ids)
		var b strings.Builder
		for _, id := range ids {
			fmt.Fprintf(&b, "%d,", id)
		}
		return b.String()
	}
	start := n.closure(map[int]bool{loop: true})
	d := &DFA{Alphabet: append([]string(nil), alphabet...), symIdx: map[string]int{}}
	for i, a := range d.Alphabet {
		d.symIdx[a] = i
	}
	index := map[key]int{}
	var sets []map[int]bool
	addState := func(set map[int]bool) int {
		k := setKey(set)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(sets)
		index[k] = id
		sets = append(sets, set)
		d.Delta = append(d.Delta, make([]int, len(alphabet)))
		d.Final = append(d.Final, set[accept])
		return id
	}
	d.Start = addState(start)
	for work := 0; work < len(sets); work++ {
		set := sets[work]
		for ai, a := range d.Alphabet {
			nextSet := map[int]bool{}
			for s := range set {
				for _, t := range n.trans[s][a] {
					nextSet[t] = true
				}
			}
			n.closure(nextSet)
			d.Delta[work][ai] = addState(nextSet)
		}
	}
	return d, nil
}

// Run consumes the stream from the start state and returns the indices at
// which a detection occurred (the DFA entered a final state).
func (d *DFA) Run(stream []string) []int {
	var out []int
	state := d.Start
	for i, sym := range stream {
		state = d.Step(state, sym)
		if d.Final[state] {
			out = append(out, i)
		}
	}
	return out
}
