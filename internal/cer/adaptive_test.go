package cer

import (
	"math"
	"testing"

	"datacron/internal/gen"
	"datacron/internal/geo"
	"datacron/internal/mobility"
	"datacron/internal/synopses"
)

func TestAdaptiveModelConvergesToStationarySource(t *testing.T) {
	alphabet := []string{"a", "b"}
	src := gen.NewMarkovSource(3, alphabet, 1, 0.8)
	m := NewAdaptiveModel(alphabet, 1, 5_000)
	for _, s := range src.Generate(50_000) {
		m.Observe(s)
	}
	for _, ctx := range []string{"a", "b"} {
		want, err := src.ConditionalProb([]string{ctx}, "a")
		if err != nil {
			t.Fatal(err)
		}
		got := m.Prob("a", []string{ctx})
		if math.Abs(got-want) > 0.05 {
			t.Errorf("P(a|%s) = %.3f, want ≈%.3f", ctx, got, want)
		}
	}
}

func TestAdaptiveModelTracksDrift(t *testing.T) {
	// Regime 1 strongly favours a→a; regime 2 strongly favours a→b. After
	// the switch, the decayed model must forget regime 1.
	alphabet := []string{"a", "b"}
	m := NewAdaptiveModel(alphabet, 1, 2_000)
	// Regime 1: long streak of "a a a ...".
	for i := 0; i < 20_000; i++ {
		m.Observe("a")
	}
	if p := m.Prob("a", []string{"a"}); p < 0.9 {
		t.Fatalf("regime 1 not learnt: P(a|a)=%.3f", p)
	}
	// Regime 2: alternate "a b a b ..." so P(b|a) → 1.
	for i := 0; i < 20_000; i++ {
		if i%2 == 0 {
			m.Observe("a")
		} else {
			m.Observe("b")
		}
	}
	if p := m.Prob("b", []string{"a"}); p < 0.8 {
		t.Errorf("drift not tracked: P(b|a)=%.3f after regime switch", p)
	}
	// A non-adaptive count model over the full stream would still say ~2:1
	// in favour of a|a; the adaptive one must not.
	if p := m.Prob("a", []string{"a"}); p > 0.2 {
		t.Errorf("old regime not forgotten: P(a|a)=%.3f", p)
	}
}

func TestAdaptiveModelUnseenContext(t *testing.T) {
	m := NewAdaptiveModel([]string{"a", "b", "c", "d"}, 2, 100)
	if p := m.Prob("a", []string{"a", "b"}); p != 0.25 {
		t.Errorf("unseen context should be uniform: %v", p)
	}
}

func TestAdaptiveForecasterOutperformsStaleOnDrift(t *testing.T) {
	// A stream whose dynamics flip mid-way: the adaptive forecaster should
	// keep (or regain) precision after the flip compared with a forecaster
	// frozen on the first regime.
	alphabet := []string{"a", "b", "c"}
	src1 := gen.NewMarkovSource(41, alphabet, 1, 0.85)
	src2 := gen.NewMarkovSource(4242, alphabet, 1, 0.85) // different dynamics
	stream := append(src1.Generate(30_000), src2.Generate(30_000)...)
	// A briskly-completing pattern: "a c c" almost never completes under
	// some regimes, which starves the comparison of scorable forecasts.
	pattern := mustParse(t, "a c")

	// Stale: model learnt on regime 1 only, never updated.
	stale := LearnModel(stream[:30_000], alphabet, 1, 1)
	sf, err := NewForecaster(pattern, alphabet, stale, 400, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	staleRes := EvaluatePrecision(sf, stream[30_000:])

	// Adaptive: learns online over the whole stream.
	am := NewAdaptiveModel(alphabet, 1, 3_000)
	af, err := NewAdaptiveForecaster(pattern, alphabet, am, 400, 0.5, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	// Warm through regime 1, then score regime 2.
	for _, s := range stream[:30_000] {
		af.Process(s)
	}
	var forecasts []Forecast
	detected := make([]bool, 30_000)
	for i, s := range stream[30_000:] {
		d, fc, ok := af.Process(s)
		if d {
			detected[i] = true
		}
		if ok {
			forecasts = append(forecasts, Forecast{At: i, Start: fc.Start, End: fc.End, Prob: fc.Prob})
		}
	}
	correct, scored := 0, 0
	for _, fc := range forecasts {
		lo, hi := fc.At+fc.Start, fc.At+fc.End
		if hi >= len(detected) {
			continue
		}
		scored++
		for k := lo; k <= hi; k++ {
			if detected[k] {
				correct++
				break
			}
		}
	}
	if scored == 0 || staleRes.Forecasts == 0 {
		t.Fatal("no scorable forecasts in this configuration")
	}
	adaptivePrecision := float64(correct) / float64(scored)
	t.Logf("after drift: adaptive=%.3f stale=%.3f (θ=0.5)", adaptivePrecision, staleRes.Precision())
	// A Wayeb forecast promises completion with probability ≥ θ using the
	// *smallest* qualifying interval, so the correct behaviour is precision
	// ≈ θ. After drift, the adaptive engine must stay calibrated; the
	// frozen model's probabilities are wrong, pushing its precision away
	// from θ (over- or under-covering).
	const theta = 0.5
	adaptiveErr := math.Abs(adaptivePrecision - theta)
	staleErr := math.Abs(staleRes.Precision() - theta)
	if adaptiveErr > 0.12 {
		t.Errorf("adaptive engine mis-calibrated after drift: |%.3f - θ| = %.3f",
			adaptivePrecision, adaptiveErr)
	}
	if adaptiveErr >= staleErr {
		t.Errorf("adaptive calibration error %.3f should beat frozen %.3f", adaptiveErr, staleErr)
	}
}

func cpWith(heading float64, ct synopses.CriticalType) synopses.CriticalPoint {
	return synopses.CriticalPoint{
		Report: mobility.Report{ID: "v", Pos: geo.Pt(23, 37), Heading: heading, SpeedKn: 5},
		Type:   ct,
	}
}

func TestClassifierHeadingQuadrants(t *testing.T) {
	c := HeadingReversalClassifier(45)
	cases := []struct {
		heading float64
		ct      synopses.CriticalType
		want    string
	}{
		{10, synopses.ChangeInHeading, "heading_north"},
		{350, synopses.ChangeInHeading, "heading_north"},
		{90, synopses.ChangeInHeading, "heading_east"},
		{180, synopses.ChangeInHeading, "heading_south"},
		{225, synopses.ChangeInHeading, "heading_south"}, // within 45° of south
		{270, synopses.ChangeInHeading, "heading_west"},
		{10, synopses.SpeedChange, "other"}, // not a turn event
	}
	for _, cse := range cases {
		if got := c.Classify(cpWith(cse.heading, cse.ct)); got != cse.want {
			t.Errorf("heading %.0f/%s -> %q, want %q", cse.heading, cse.ct, got, cse.want)
		}
	}
	alpha := c.Alphabet()
	if len(alpha) != 5 {
		t.Errorf("alphabet = %v", alpha)
	}
}

func TestNorthToSouthReversalEndToEnd(t *testing.T) {
	// Drive the paper's full relational pipeline: critical points →
	// classifier → DFA detection of NorthToSouthReversal.
	c := HeadingReversalClassifier(45)
	dfa, err := Compile(NorthToSouthReversalPattern(), c.Alphabet())
	if err != nil {
		t.Fatal(err)
	}
	turns := []synopses.CriticalPoint{
		cpWith(5, synopses.ChangeInHeading),   // north
		cpWith(80, synopses.ChangeInHeading),  // east
		cpWith(15, synopses.ChangeInHeading),  // north
		cpWith(175, synopses.ChangeInHeading), // south: completes
		cpWith(270, synopses.ChangeInHeading), // west: no-op
	}
	state := dfa.Start
	var detections int
	for _, cp := range turns {
		state = dfa.Step(state, c.Classify(cp))
		if dfa.Final[state] {
			detections++
		}
	}
	if detections != 1 {
		t.Errorf("detections = %d, want 1", detections)
	}
}

func TestPredicateCombinators(t *testing.T) {
	p := And(IsType(synopses.ChangeInHeading), IsHeading(0, 30))
	if !p(cpWith(20, synopses.ChangeInHeading)) {
		t.Error("conjunction should match")
	}
	if p(cpWith(20, synopses.SpeedChange)) {
		t.Error("type mismatch should fail")
	}
	if p(cpWith(90, synopses.ChangeInHeading)) {
		t.Error("heading mismatch should fail")
	}
}
