package cer

import (
	"fmt"
)

// Forecast is an interval prediction: the pattern is expected to complete
// between Start and End steps ahead (inclusive) with probability Prob ≥ the
// threshold it was produced under.
type Forecast struct {
	At    int // stream index the forecast was made at
	Start int // steps ahead, 1-based inclusive
	End   int
	Prob  float64
}

// Detection marks a stream index at which the pattern completed.
type Detection struct {
	At int
}

// Forecaster is the online recognition-and-forecasting engine: it consumes
// a symbol stream, reports detections (DFA final states), and emits a
// forecast interval at every position once enough context has accumulated.
type Forecaster struct {
	dfa   *DFA
	pmc   *PMC
	theta float64

	state int
	ctx   []string
	pos   int
}

// NewForecaster builds the engine for a pattern over an alphabet, with an
// input model and a confidence threshold theta.
func NewForecaster(p Pattern, alphabet []string, model SymbolModel, horizon int, theta float64) (*Forecaster, error) {
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("cer: theta must be in (0,1), got %v", theta)
	}
	dfa, err := Compile(p, alphabet)
	if err != nil {
		return nil, err
	}
	return &Forecaster{
		dfa:   dfa,
		pmc:   BuildPMC(dfa, model, horizon),
		theta: theta,
		state: dfa.Start,
	}, nil
}

// DFA exposes the compiled automaton (for inspection and tests).
func (f *Forecaster) DFA() *DFA { return f.dfa }

// PMC exposes the pattern Markov chain.
func (f *Forecaster) PMC() *PMC { return f.pmc }

// Process consumes one symbol. detected reports whether the pattern
// completed at this symbol; fc is the forecast made after consuming it
// (ok=false while the model context is still filling up or when no interval
// reaches theta within the horizon).
func (f *Forecaster) Process(symbol string) (detected bool, fc Forecast, ok bool) {
	f.state = f.dfa.Step(f.state, symbol)
	detected = f.dfa.Final[f.state]
	m := f.pmc.model.Order()
	if m > 0 {
		f.ctx = append(f.ctx, symbol)
		if len(f.ctx) > m {
			f.ctx = f.ctx[1:]
		}
	}
	f.pos++
	if len(f.ctx) == m {
		if dist, err := f.pmc.WaitingTime(f.state, f.ctx); err == nil {
			if s, e, p, found := ForecastInterval(dist, f.theta); found {
				return detected, Forecast{At: f.pos - 1, Start: s, End: e, Prob: p}, true
			}
		}
	}
	return detected, Forecast{}, false
}

// Reset returns the engine to its initial state.
func (f *Forecaster) Reset() {
	f.state = f.dfa.Start
	f.ctx = nil
	f.pos = 0
}

// PrecisionResult aggregates a forecasting evaluation run (Figure 8).
type PrecisionResult struct {
	Theta      float64
	Order      int
	Forecasts  int
	Correct    int
	Detections int
	// SpreadSum accumulates interval widths (end-start) of scored
	// forecasts; Wayeb's evaluations report spread alongside precision —
	// narrow intervals are more useful at equal precision.
	SpreadSum int
}

// Precision is the fraction of forecasts whose interval contained a
// detection.
func (r PrecisionResult) Precision() float64 {
	if r.Forecasts == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Forecasts)
}

// Spread is the mean forecast-interval width in steps.
func (r PrecisionResult) Spread() float64 {
	if r.Forecasts == 0 {
		return 0
	}
	return float64(r.SpreadSum) / float64(r.Forecasts)
}

// EvaluatePrecision replays a stream and scores every emitted forecast: a
// forecast at position t with interval (s, e) is correct iff some detection
// occurs at a position in [t+s, t+e]. Forecasts whose interval extends past
// the end of the stream are not scored (their outcome is unknown).
func EvaluatePrecision(f *Forecaster, stream []string) PrecisionResult {
	f.Reset()
	var forecasts []Forecast
	detected := make([]bool, len(stream))
	nDet := 0
	for i, sym := range stream {
		d, fc, ok := f.Process(sym)
		if d {
			detected[i] = true
			nDet++
		}
		if ok {
			forecasts = append(forecasts, fc)
		}
	}
	res := PrecisionResult{Theta: f.theta, Order: f.pmc.model.Order(), Detections: nDet}
	for _, fc := range forecasts {
		lo, hi := fc.At+fc.Start, fc.At+fc.End
		if hi >= len(stream) {
			continue // outcome unknown
		}
		res.Forecasts++
		res.SpreadSum += fc.End - fc.Start
		for t := lo; t <= hi; t++ {
			if detected[t] {
				res.Correct++
				break
			}
		}
	}
	return res
}
