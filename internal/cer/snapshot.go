package cer

import (
	"encoding/json"
	"fmt"
)

// forecasterSnapshot is the wire form of the Forecaster's mutable state. The
// compiled DFA and PMC are functions of the pattern and model configuration,
// which the restoring pipeline rebuilds identically, so only the runtime
// cursor needs to be captured.
type forecasterSnapshot struct {
	State int      `json:"state"`
	Ctx   []string `json:"ctx,omitempty"`
	Pos   int      `json:"pos"`
}

// Snapshot serializes the engine's runtime state (checkpoint.Snapshotter).
func (f *Forecaster) Snapshot() ([]byte, error) {
	return json.Marshal(forecasterSnapshot{State: f.state, Ctx: f.ctx, Pos: f.pos})
}

// Restore replaces the engine's runtime state with a snapshot taken by
// Snapshot against an identically configured Forecaster.
func (f *Forecaster) Restore(data []byte) error {
	var snap forecasterSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("cer: restore: %w", err)
	}
	if snap.State < 0 || snap.State >= len(f.dfa.Delta) {
		return fmt.Errorf("cer: restore: state %d out of range for %d-state DFA", snap.State, len(f.dfa.Delta))
	}
	f.state = snap.State
	f.ctx = snap.Ctx
	f.pos = snap.Pos
	return nil
}
