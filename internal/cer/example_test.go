package cer_test

import (
	"fmt"

	"datacron/internal/cer"
)

// ExampleCompile shows the paper's Figure 6 construction: the pattern
// R = a·c·c compiled to a streaming DFA over Σ = {a, b, c}.
func ExampleCompile() {
	pattern, err := cer.ParsePattern("a c c")
	if err != nil {
		panic(err)
	}
	dfa, err := cer.Compile(pattern, []string{"a", "b", "c"})
	if err != nil {
		panic(err)
	}
	detections := dfa.Run([]string{"b", "a", "c", "c", "a", "c", "c"})
	fmt.Println("states:", dfa.NumStates())
	fmt.Println("detections at:", detections)
	// Output:
	// states: 4
	// detections at: [3 6]
}

// ExampleForecastInterval extracts the smallest interval whose waiting-time
// mass reaches the confidence threshold θ — the forecast of Figure 7.
func ExampleForecastInterval() {
	waitingTime := []float64{0.1, 0.4, 0.3, 0.1, 0.1}
	start, end, prob, ok := cer.ForecastInterval(waitingTime, 0.6)
	fmt.Printf("I=(%d,%d) p=%.1f ok=%v\n", start, end, prob, ok)
	// Output:
	// I=(2,3) p=0.7 ok=true
}

// ExampleClassifier demonstrates the relational-pattern extension: turn
// events annotated with headings are classified through predicates like
// IsHeading(North) before pattern matching.
func ExampleClassifier() {
	c := cer.HeadingReversalClassifier(45)
	fmt.Println(c.Alphabet())
	fmt.Println(cer.NorthToSouthReversalPattern())
	// Output:
	// [heading_north heading_east heading_south heading_west other]
	// heading_north (heading_north + heading_east)* heading_south
}
