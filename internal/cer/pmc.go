package cer

import (
	"fmt"
	"math"
	"strings"
)

// SymbolModel gives the conditional distribution of the next stream symbol
// given the last m symbols (m = Order). Order 0 means i.i.d.
type SymbolModel interface {
	Order() int
	// Prob returns P(next | ctx); ctx has exactly Order symbols.
	Prob(next string, ctx []string) float64
}

// CountModel is an m-th-order Markov model estimated from a training stream
// by conditional frequencies with Laplace smoothing.
type CountModel struct {
	order    int
	alphabet []string
	counts   map[string]map[string]float64
	totals   map[string]float64
	alpha    float64
}

// LearnModel estimates an order-m model from the training stream.
func LearnModel(stream []string, alphabet []string, order int, laplace float64) *CountModel {
	if order < 0 {
		order = 0
	}
	if laplace <= 0 {
		laplace = 1
	}
	m := &CountModel{
		order:    order,
		alphabet: append([]string(nil), alphabet...),
		counts:   map[string]map[string]float64{},
		totals:   map[string]float64{},
		alpha:    laplace,
	}
	for i := order; i < len(stream); i++ {
		ctx := strings.Join(stream[i-order:i], "\x00")
		if m.counts[ctx] == nil {
			m.counts[ctx] = map[string]float64{}
		}
		m.counts[ctx][stream[i]]++
		m.totals[ctx]++
	}
	return m
}

// Order implements SymbolModel.
func (m *CountModel) Order() int { return m.order }

// Prob implements SymbolModel with Laplace smoothing.
func (m *CountModel) Prob(next string, ctx []string) float64 {
	k := strings.Join(ctx, "\x00")
	tot := m.totals[k]
	var c float64
	if m.counts[k] != nil {
		c = m.counts[k][next]
	}
	return (c + m.alpha) / (tot + m.alpha*float64(len(m.alphabet)))
}

// PMC is the Pattern Markov Chain: the product of the DFA with the symbol
// model's context. Each chain state is a (DFA state, last-m-symbols
// context) pair; the transition matrix follows the conditional symbol
// distribution (Figure 6(b)).
type PMC struct {
	dfa    *DFA
	model  SymbolModel
	states []pmcState
	index  map[string]int
	// trans[s] lists (target state, probability, targetIsFinal).
	trans [][]pmcEdge
	// waiting[s][k] = P(first detection exactly k+1 steps ahead | state s).
	waiting [][]float64
	horizon int
}

type pmcState struct {
	q   int
	ctx []string
}

type pmcEdge struct {
	to    int
	p     float64
	final bool
}

func pmcKey(q int, ctx []string) string {
	return fmt.Sprintf("%d|%s", q, strings.Join(ctx, "\x00"))
}

// BuildPMC constructs the chain reachable from every (DFA state, context)
// combination and precomputes waiting-time distributions up to horizon.
func BuildPMC(dfa *DFA, model SymbolModel, horizon int) *PMC {
	if horizon < 1 {
		horizon = 20
	}
	p := &PMC{dfa: dfa, model: model, index: map[string]int{}, horizon: horizon}
	m := model.Order()
	// Enumerate all contexts of length m.
	var contexts [][]string
	var walk func(prefix []string)
	walk = func(prefix []string) {
		if len(prefix) == m {
			contexts = append(contexts, append([]string(nil), prefix...))
			return
		}
		for _, a := range dfa.Alphabet {
			walk(append(prefix, a))
		}
	}
	walk(nil)

	for q := 0; q < dfa.NumStates(); q++ {
		for _, ctx := range contexts {
			p.index[pmcKey(q, ctx)] = len(p.states)
			p.states = append(p.states, pmcState{q: q, ctx: ctx})
		}
	}
	// Transitions.
	p.trans = make([][]pmcEdge, len(p.states))
	for si, st := range p.states {
		edges := make([]pmcEdge, 0, len(dfa.Alphabet))
		for _, a := range dfa.Alphabet {
			prob := model.Prob(a, st.ctx)
			nq := dfa.Step(st.q, a)
			nctx := st.ctx
			if m > 0 {
				nctx = append(append([]string(nil), st.ctx[1:]...), a)
			}
			edges = append(edges, pmcEdge{
				to:    p.index[pmcKey(nq, nctx)],
				p:     prob,
				final: dfa.Final[nq],
			})
		}
		p.trans[si] = edges
	}
	p.computeWaiting()
	return p
}

// computeWaiting fills waiting[s][k] = P(first entry into a final DFA state
// happens exactly at step k+1 | current chain state s), for k+1 ≤ horizon.
func (p *PMC) computeWaiting() {
	n := len(p.states)
	p.waiting = make([][]float64, n)
	for s := range p.waiting {
		p.waiting[s] = make([]float64, p.horizon)
	}
	// k = 1.
	for s, edges := range p.trans {
		for _, e := range edges {
			if e.final {
				p.waiting[s][0] += e.p
			}
		}
	}
	// k > 1: go to a non-final successor, then first-hit in k-1.
	for k := 1; k < p.horizon; k++ {
		for s, edges := range p.trans {
			var sum float64
			for _, e := range edges {
				if !e.final {
					sum += e.p * p.waiting[e.to][k-1]
				}
			}
			p.waiting[s][k] = sum
		}
	}
}

// NumStates returns the number of chain states.
func (p *PMC) NumStates() int { return len(p.states) }

// WaitingTime returns the waiting-time distribution of the chain state for
// DFA state q and context ctx (Figure 7(b)); index k holds the probability
// of first detection exactly k+1 steps ahead.
func (p *PMC) WaitingTime(q int, ctx []string) ([]float64, error) {
	si, ok := p.index[pmcKey(q, ctx)]
	if !ok {
		return nil, fmt.Errorf("cer: unknown PMC state (%d, %v)", q, ctx)
	}
	return p.waiting[si], nil
}

// ForecastInterval finds the smallest interval I = (start, end), in steps
// ahead (1-based, inclusive), whose waiting-time mass is at least theta.
// ok is false when even the whole horizon has not accumulated theta.
// Ties in length prefer the earliest interval.
func ForecastInterval(dist []float64, theta float64) (start, end int, prob float64, ok bool) {
	bestLen := math.MaxInt
	var bestStart, bestEnd int
	var bestProb float64
	sum := 0.0
	lo := 0
	for hi := 0; hi < len(dist); hi++ {
		sum += dist[hi]
		for sum-dist[lo] >= theta && lo < hi {
			sum -= dist[lo]
			lo++
		}
		if sum >= theta {
			if hi-lo < bestLen {
				bestLen = hi - lo
				bestStart, bestEnd = lo+1, hi+1
				bestProb = sum
			}
		}
	}
	if bestLen == math.MaxInt {
		return 0, 0, 0, false
	}
	return bestStart, bestEnd, bestProb, true
}
