// Package cer implements the complex event recognition and forecasting
// component of Section 6 (the Wayeb method of Alevizos, Artikis & Paliouras,
// DEBS 2017): event patterns given as regular expressions over a finite
// symbol alphabet are compiled to deterministic finite automata; the DFA is
// combined with an m-th-order Markov model of the input stream into a
// Pattern Markov Chain (PMC); waiting-time distributions derived from the
// PMC yield forecast intervals — the smallest interval in which the pattern
// will complete with probability at least a user threshold θ.
package cer

import (
	"fmt"
	"strings"
)

// Pattern is a regular expression AST over event-type symbols. The paper's
// syntax writes disjunction as + and iteration as *; sequence is
// juxtaposition.
type Pattern interface {
	// String renders the pattern in the paper's syntax.
	String() string
	isPattern()
}

// SymPattern matches one event of the given type.
type SymPattern string

func (s SymPattern) isPattern()     {}
func (s SymPattern) String() string { return string(s) }

// SeqPattern matches its parts in order.
type SeqPattern []Pattern

func (s SeqPattern) isPattern() {}
func (s SeqPattern) String() string {
	parts := make([]string, len(s))
	for i, p := range s {
		parts[i] = maybeParen(p)
	}
	return strings.Join(parts, " ")
}

// OrPattern matches any one of its branches (the paper's +).
type OrPattern []Pattern

func (o OrPattern) isPattern() {}
func (o OrPattern) String() string {
	parts := make([]string, len(o))
	for i, p := range o {
		parts[i] = maybeParen(p)
	}
	return strings.Join(parts, " + ")
}

// StarPattern matches zero or more repetitions (the paper's *).
type StarPattern struct{ Inner Pattern }

func (s StarPattern) isPattern()     {}
func (s StarPattern) String() string { return maybeParen(s.Inner) + "*" }

func maybeParen(p Pattern) string {
	switch p.(type) {
	case SeqPattern, OrPattern:
		return "(" + p.String() + ")"
	default:
		return p.String()
	}
}

// Convenience constructors.

// Sym matches a single event type.
func Sym(s string) Pattern { return SymPattern(s) }

// Seq matches patterns in sequence.
func Seq(ps ...Pattern) Pattern { return SeqPattern(ps) }

// Or matches any branch.
func Or(ps ...Pattern) Pattern { return OrPattern(ps) }

// Star matches zero or more repetitions.
func Star(p Pattern) Pattern { return StarPattern{Inner: p} }

// ParsePattern parses the paper's pattern syntax: symbols are identifiers
// (letters, digits, underscore), juxtaposition is sequence, '+' is
// disjunction (lowest precedence), '*' is iteration (highest), parentheses
// group. Example: "north (north + east)* south".
func ParsePattern(s string) (Pattern, error) {
	p := &parser{input: s}
	pat, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("cer: unexpected %q at offset %d", p.input[p.pos:], p.pos)
	}
	return pat, nil
}

type parser struct {
	input string
	pos   int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func (p *parser) parseOr() (Pattern, error) {
	first, err := p.parseSeq()
	if err != nil {
		return nil, err
	}
	branches := []Pattern{first}
	for {
		p.skipSpace()
		if p.peek() != '+' {
			break
		}
		p.pos++
		next, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		branches = append(branches, next)
	}
	if len(branches) == 1 {
		return branches[0], nil
	}
	return OrPattern(branches), nil
}

func (p *parser) parseSeq() (Pattern, error) {
	var parts []Pattern
	for {
		p.skipSpace()
		c := p.peek()
		if c == 0 || c == ')' || c == '+' {
			break
		}
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		parts = append(parts, atom)
	}
	switch len(parts) {
	case 0:
		return nil, fmt.Errorf("cer: empty pattern at offset %d", p.pos)
	case 1:
		return parts[0], nil
	default:
		return SeqPattern(parts), nil
	}
}

func (p *parser) parseAtom() (Pattern, error) {
	p.skipSpace()
	var atom Pattern
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("cer: missing ')' at offset %d", p.pos)
		}
		p.pos++
		atom = inner
	case isSymbolChar(c):
		start := p.pos
		for p.pos < len(p.input) && isSymbolChar(p.input[p.pos]) {
			p.pos++
		}
		atom = SymPattern(p.input[start:p.pos])
	default:
		return nil, fmt.Errorf("cer: unexpected %q at offset %d", string(c), p.pos)
	}
	// Postfix stars.
	for {
		p.skipSpace()
		if p.peek() != '*' {
			break
		}
		p.pos++
		atom = StarPattern{Inner: atom}
	}
	return atom, nil
}

func isSymbolChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// Symbols returns the distinct event types referenced by the pattern.
func Symbols(p Pattern) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(Pattern)
	walk = func(p Pattern) {
		switch v := p.(type) {
		case SymPattern:
			if !seen[string(v)] {
				seen[string(v)] = true
				out = append(out, string(v))
			}
		case SeqPattern:
			for _, q := range v {
				walk(q)
			}
		case OrPattern:
			for _, q := range v {
				walk(q)
			}
		case StarPattern:
			walk(v.Inner)
		}
	}
	walk(p)
	return out
}
