package stream

import (
	"time"
)

// SessionWindow groups each key's events into gap-separated sessions: a
// session extends while consecutive events arrive within gap of each other
// and closes after silence longer than gap — the windowing that matches
// voyage legs and flight phases, where activity bursts are separated by
// stops or communication gaps.
//
// Sessions are emitted when the watermark (max event time minus
// allowedLateness) passes the session end + gap, or when the input closes.
// Late events beyond the allowance are dropped.
func SessionWindow[I, A any](
	in <-chan Event[I],
	gap time.Duration,
	allowedLateness time.Duration,
	init func(w Window) A,
	add func(acc A, e Event[I]) A,
) <-chan Event[WindowAggregate[A]] {
	return NewSessionWindowOp(gap, allowedLateness, init, add, nil, nil).Run(in)
}
