package stream

import (
	"sort"
	"time"
)

// SessionWindow groups each key's events into gap-separated sessions: a
// session extends while consecutive events arrive within gap of each other
// and closes after silence longer than gap — the windowing that matches
// voyage legs and flight phases, where activity bursts are separated by
// stops or communication gaps.
//
// Sessions are emitted when the watermark (max event time minus
// allowedLateness) passes the session end + gap, or when the input closes.
// Late events beyond the allowance are dropped.
func SessionWindow[I, A any](
	in <-chan Event[I],
	gap time.Duration,
	allowedLateness time.Duration,
	init func(w Window) A,
	add func(acc A, e Event[I]) A,
) <-chan Event[WindowAggregate[A]] {
	out := make(chan Event[WindowAggregate[A]])
	go func() {
		defer close(out)
		wm := NewWatermarker(allowedLateness)
		type session struct {
			win Window
			acc A
		}
		open := map[string]*session{}

		emit := func(s *session) {
			out <- Event[WindowAggregate[A]]{
				Key:   s.win.Key,
				Time:  s.win.End,
				Value: WindowAggregate[A]{Window: s.win, Value: s.acc},
			}
		}
		fire := func(upTo time.Time, all bool) {
			var ready []*session
			for k, s := range open {
				if all || !s.win.End.Add(gap).After(upTo) {
					ready = append(ready, s)
					delete(open, k)
				}
			}
			sort.Slice(ready, func(i, j int) bool {
				if !ready[i].win.End.Equal(ready[j].win.End) {
					return ready[i].win.End.Before(ready[j].win.End)
				}
				return ready[i].win.Key < ready[j].win.Key
			})
			for _, s := range ready {
				emit(s)
			}
		}

		for e := range in {
			if !wm.Observe(e.Time) {
				continue
			}
			s, ok := open[e.Key]
			if ok && e.Time.Sub(s.win.End) > gap {
				// Silence exceeded the gap: the old session is complete.
				emit(s)
				ok = false
			}
			if !ok {
				win := Window{Key: e.Key, Start: e.Time, End: e.Time}
				s = &session{win: win, acc: init(win)}
				open[e.Key] = s
			}
			if e.Time.After(s.win.End) {
				s.win.End = e.Time
			}
			if e.Time.Before(s.win.Start) {
				s.win.Start = e.Time // late-but-allowed event extends backwards
			}
			s.acc = add(s.acc, e)
			fire(wm.Watermark(), false)
		}
		fire(time.Time{}, true)
	}()
	return out
}
