// Package stream implements the in-process dataflow engine that substitutes
// for Apache Flink in the datAcron architecture: typed event streams with
// event time, keyed stateful operators, watermark-driven tumbling and
// sliding windows, and fan-in/fan-out plumbing.
//
// Streams are ordinary channels of Event values, and operators are functions
// from input channel to output channel that run their processing loop in a
// dedicated goroutine — sharing by communicating, per Effective Go. An
// operator's output channel closes when its input closes and all pending
// state (e.g. open windows) has been flushed, so termination propagates
// cleanly down a pipeline.
package stream

import (
	"sync"
	"time"

	"datacron/internal/shard"
)

// Event is a keyed, timestamped element of a stream. Time is event time
// (when the position report was generated), not processing time.
type Event[T any] struct {
	Key   string
	Time  time.Time
	Value T
}

// E constructs an event.
func E[T any](key string, t time.Time, v T) Event[T] {
	return Event[T]{Key: key, Time: t, Value: v}
}

// FromSlice returns a stream replaying the given events in order.
func FromSlice[T any](events []Event[T]) <-chan Event[T] {
	out := make(chan Event[T])
	//lint:ignore goroleak finite replay source: the goroutine exits once the slice is drained, and every consumer (Collect, the pipeline operators) drains to close
	go func() {
		defer close(out)
		for _, e := range events {
			out <- e
		}
	}()
	return out
}

// Collect drains a stream into a slice; it returns when the stream closes.
func Collect[T any](in <-chan Event[T]) []Event[T] {
	var out []Event[T]
	for e := range in {
		out = append(out, e)
	}
	return out
}

// Map transforms every event's value.
func Map[I, O any](in <-chan Event[I], f func(Event[I]) O) <-chan Event[O] {
	out := make(chan Event[O])
	go func() {
		defer close(out)
		for e := range in {
			out <- Event[O]{Key: e.Key, Time: e.Time, Value: f(e)}
		}
	}()
	return out
}

// Filter drops events for which pred returns false.
func Filter[T any](in <-chan Event[T], pred func(Event[T]) bool) <-chan Event[T] {
	out := make(chan Event[T])
	go func() {
		defer close(out)
		for e := range in {
			if pred(e) {
				out <- e
			}
		}
	}()
	return out
}

// FlatMap maps each event to zero or more output events via the emit
// callback, preserving the input's key and time unless the callback
// overrides them by constructing its own events.
func FlatMap[I, O any](in <-chan Event[I], f func(e Event[I], emit func(Event[O]))) <-chan Event[O] {
	out := make(chan Event[O])
	go func() {
		defer close(out)
		emit := func(o Event[O]) { out <- o }
		for e := range in {
			f(e, emit)
		}
	}()
	return out
}

// KeyBy re-keys a stream.
func KeyBy[T any](in <-chan Event[T], key func(Event[T]) string) <-chan Event[T] {
	out := make(chan Event[T])
	go func() {
		defer close(out)
		for e := range in {
			e.Key = key(e)
			out <- e
		}
	}()
	return out
}

// Process runs a keyed stateful operator: for each event, f receives the
// per-key state (created on first use by newState) and an emit callback.
// When the input closes, onClose (if non-nil) is invoked once per key so
// operators can flush pending state.
func Process[I, O, S any](
	in <-chan Event[I],
	newState func(key string) *S,
	f func(state *S, e Event[I], emit func(Event[O])),
	onClose func(key string, state *S, emit func(Event[O])),
) <-chan Event[O] {
	return NewProcessOp(newState, f, onClose, nil, nil).Run(in)
}

// Merge fans multiple streams into one. Output order across inputs is
// arbitrary; per-input order is preserved.
func Merge[T any](ins ...<-chan Event[T]) <-chan Event[T] {
	out := make(chan Event[T])
	var wg sync.WaitGroup
	wg.Add(len(ins))
	for _, in := range ins {
		go func(in <-chan Event[T]) {
			defer wg.Done()
			for e := range in {
				out <- e
			}
		}(in)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Partition fans a stream out to n keyed substreams: every event goes to
// output shard.Route(e.Key, n), the same FNV-1a discipline the broker uses
// for partition affinity and the shard plane for worker routing, so a
// stream partitioned here lands on the same shard index as the equivalent
// broker-keyed record. All events of one key share a substream (keyed
// operator state stays local to it) and per-substream order follows input
// order. Each output must be consumed or the pipeline stalls once buf is
// exhausted.
func Partition[T any](in <-chan Event[T], n, buf int) []<-chan Event[T] {
	if n < 1 {
		n = 1
	}
	chans := make([]chan Event[T], n)
	outs := make([]<-chan Event[T], n)
	for i := range chans {
		chans[i] = make(chan Event[T], buf)
		outs[i] = chans[i]
	}
	go func() {
		defer func() {
			for _, c := range chans {
				close(c)
			}
		}()
		for e := range in {
			chans[shard.Route(e.Key, n)] <- e
		}
	}()
	return outs
}

// Tee duplicates a stream into n independent output streams. Each output
// must be consumed or the pipeline stalls (no internal buffering beyond buf).
func Tee[T any](in <-chan Event[T], n, buf int) []<-chan Event[T] {
	chans := make([]chan Event[T], n)
	outs := make([]<-chan Event[T], n)
	for i := range chans {
		chans[i] = make(chan Event[T], buf)
		outs[i] = chans[i]
	}
	go func() {
		defer func() {
			for _, c := range chans {
				close(c)
			}
		}()
		for e := range in {
			for _, c := range chans {
				c <- e
			}
		}
	}()
	return outs
}
