package stream

import (
	"testing"
	"time"

	"datacron/internal/obs"
)

func TestProcessOpInstrumentation(t *testing.T) {
	reg := obs.NewRegistry(obs.NewManualClock(time.Unix(0, 0).UTC()))
	op := NewProcessOp(
		func(key string) *int { v := 0; return &v },
		func(st *int, e Event[int], emit func(Event[int])) {
			*st += e.Value
			if *st%2 == 0 {
				emit(Event[int]{Key: e.Key, Time: e.Time, Value: *st})
			}
		},
		nil, nil, nil,
	).Instrument(reg, "speed")

	base := time.Unix(1000, 0).UTC()
	var got []Event[int]
	sink := func(o Event[int]) { got = append(got, o) }
	for i := 1; i <= 4; i++ {
		op.Feed(E("v1", base.Add(time.Duration(i)*time.Second), 1), sink)
	}
	s := reg.Snapshot()
	if in := s.Counter("stream.speed.in"); in != 4 {
		t.Fatalf("in = %d, want 4", in)
	}
	if out := s.Counter("stream.speed.out"); out != int64(len(got)) || out != 2 {
		t.Fatalf("out = %d, emitted %d, want 2", out, len(got))
	}
}

func TestWindowOpInstrumentation(t *testing.T) {
	reg := obs.NewRegistry(obs.NewManualClock(time.Unix(0, 0).UTC()))
	op := NewWindowOp[int, int](
		time.Minute, time.Minute, 0,
		func(w Window) int { return 0 },
		func(acc int, e Event[int]) int { return acc + e.Value },
		nil, nil,
	).Instrument(reg, "win")

	base := time.Unix(0, 0).UTC()
	var fired int
	sink := func(o Event[WindowAggregate[int]]) { fired++ }
	op.Feed(E("k", base.Add(10*time.Second), 1), sink)
	op.Feed(E("k", base.Add(70*time.Second), 1), sink) // fires window 0
	op.Feed(E("k", base.Add(5*time.Second), 1), sink)  // late beyond allowance

	s := reg.Snapshot()
	if in := s.Counter("stream.win.in"); in != 3 {
		t.Fatalf("in = %d, want 3", in)
	}
	if f := s.Counter("stream.win.fired"); f != int64(fired) || f != 1 {
		t.Fatalf("fired counter = %d, emitted %d, want 1", f, fired)
	}
	if late := s.Counter("stream.win.late"); late != 1 {
		t.Fatalf("late = %d, want 1", late)
	}
	if open, _ := s.Gauge("stream.win.open_windows"); open != 1 {
		t.Fatalf("open_windows = %v, want 1", open)
	}

	ws := op.Watermark()
	if ws.Late != 1 || !ws.MaxEventTime.Equal(base.Add(70*time.Second)) {
		t.Fatalf("watermark stats = %+v", ws)
	}
	if !ws.Watermark.Equal(base.Add(70 * time.Second)) {
		t.Fatalf("watermark = %v, want %v", ws.Watermark, base.Add(70*time.Second))
	}
}

func TestSessionOpInstrumentation(t *testing.T) {
	reg := obs.NewRegistry(obs.NewManualClock(time.Unix(0, 0).UTC()))
	op := NewSessionWindowOp[int, int](
		30*time.Second, 0,
		func(w Window) int { return 0 },
		func(acc int, e Event[int]) int { return acc + 1 },
		nil, nil,
	).Instrument(reg, "gaps")

	base := time.Unix(0, 0).UTC()
	var fired int
	sink := func(o Event[WindowAggregate[int]]) { fired++ }
	op.Feed(E("k", base, 1), sink)
	op.Feed(E("k", base.Add(10*time.Second), 1), sink)
	op.Feed(E("k", base.Add(2*time.Minute), 1), sink) // gap exceeded: closes session

	s := reg.Snapshot()
	if in := s.Counter("stream.gaps.in"); in != 3 {
		t.Fatalf("in = %d, want 3", in)
	}
	if f := s.Counter("stream.gaps.fired"); f != int64(fired) || f < 1 {
		t.Fatalf("fired = %d, emitted %d", f, fired)
	}
	// Uninstrumented op keeps working (m == nil path).
	op2 := NewSessionWindowOp[int, int](time.Second, 0,
		func(w Window) int { return 0 },
		func(acc int, e Event[int]) int { return acc + 1 },
		nil, nil,
	)
	op2.Feed(E("k", base, 1), sink)
}
