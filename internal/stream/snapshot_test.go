package stream

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"
)

// splitResume runs the generic snapshot/restore experiment: feed the first
// `split` events into op A, snapshot, restore into a fresh op B, feed the
// remainder plus Close, and return A's output up to the split concatenated
// with B's output. A correct operator makes this equal the uninterrupted run.
func splitResume[I any, O any, Op interface {
	Snapshot() ([]byte, error)
	Restore([]byte) error
}](t *testing.T, events []Event[I], split int, mk func() Op,
	feed func(Op, Event[I], func(Event[O])), closeOp func(Op, func(Event[O]))) []Event[O] {
	t.Helper()
	var out []Event[O]
	emit := func(e Event[O]) { out = append(out, e) }

	a := mk()
	for _, e := range events[:split] {
		feed(a, e, emit)
	}
	snap, err := a.Snapshot()
	if err != nil {
		t.Fatalf("snapshot at %d: %v", split, err)
	}
	b := mk()
	if err := b.Restore(snap); err != nil {
		t.Fatalf("restore at %d: %v", split, err)
	}
	for _, e := range events[split:] {
		feed(b, e, emit)
	}
	closeOp(b, emit)
	return out
}

type procState struct {
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
}

func TestProcessOpSnapshotResume(t *testing.T) {
	t0 := time.Unix(10_000, 0).UTC()
	var events []Event[float64]
	for i := 0; i < 40; i++ {
		events = append(events, Event[float64]{
			Key:   fmt.Sprintf("k%d", i%3),
			Time:  t0.Add(time.Duration(i) * time.Second),
			Value: float64(i) * 1.5,
		})
	}
	enc, dec := JSONCodec[procState]()
	mk := func() *ProcessOp[float64, string, procState] {
		return NewProcessOp(
			func(key string) *procState { return &procState{} },
			func(st *procState, e Event[float64], emit func(Event[string])) {
				st.Count++
				st.Sum += e.Value
				if st.Count%5 == 0 {
					emit(Event[string]{Key: e.Key, Time: e.Time,
						Value: fmt.Sprintf("%s:%d:%.1f", e.Key, st.Count, st.Sum)})
				}
			},
			func(key string, st *procState, emit func(Event[string])) {
				emit(Event[string]{Key: key, Value: fmt.Sprintf("final %s %d %.1f", key, st.Count, st.Sum)})
			},
			enc, dec,
		)
	}
	feed := func(op *ProcessOp[float64, string, procState], e Event[float64], emit func(Event[string])) {
		op.Feed(e, emit)
	}
	closeOp := func(op *ProcessOp[float64, string, procState], emit func(Event[string])) {
		op.Close(emit)
	}

	var want []Event[string]
	ref := mk()
	for _, e := range events {
		ref.Feed(e, func(o Event[string]) { want = append(want, o) })
	}
	ref.Close(func(o Event[string]) { want = append(want, o) })

	for _, split := range []int{0, 1, 7, 20, 39, 40} {
		got := splitResume(t, events, split, mk, feed, closeOp)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("split %d: output diverged\ngot  %v\nwant %v", split, got, want)
		}
	}
}

func TestProcessOpSnapshotWithoutCodec(t *testing.T) {
	op := NewProcessOp[int, int, procState](
		func(string) *procState { return &procState{} },
		func(st *procState, e Event[int], emit func(Event[int])) {},
		nil, nil, nil,
	)
	if _, err := op.Snapshot(); err == nil {
		t.Fatal("Snapshot without encoder succeeded")
	}
	if err := op.Restore([]byte("{}")); err == nil {
		t.Fatal("Restore without decoder succeeded")
	}
}

func TestWindowOpSnapshotResume(t *testing.T) {
	t0 := time.Unix(100_000, 0).UTC()
	var events []Event[int]
	for i := 0; i < 60; i++ {
		// Two keys, slightly jittered spacing so windows open and close at
		// varying points; a late-but-allowed event every 11th record.
		ts := t0.Add(time.Duration(i*7) * time.Second)
		if i%11 == 10 {
			ts = ts.Add(-9 * time.Second)
		}
		events = append(events, Event[int]{Key: fmt.Sprintf("v%d", i%2), Time: ts, Value: i})
	}
	enc := func(a int) ([]byte, error) { return json.Marshal(a) }
	dec := func(b []byte) (int, error) {
		var a int
		err := json.Unmarshal(b, &a)
		return a, err
	}
	type outT = WindowAggregate[int]
	mk := func() *WindowOp[int, int] {
		return NewWindowOp(
			30*time.Second, 15*time.Second, 10*time.Second,
			func(w Window) int { return 0 },
			func(acc int, e Event[int]) int { return acc + e.Value },
			enc, dec,
		)
	}
	feed := func(op *WindowOp[int, int], e Event[int], emit func(Event[outT])) { op.Feed(e, emit) }
	closeOp := func(op *WindowOp[int, int], emit func(Event[outT])) { op.Close(emit) }

	var want []Event[outT]
	ref := mk()
	for _, e := range events {
		ref.Feed(e, func(o Event[outT]) { want = append(want, o) })
	}
	ref.Close(func(o Event[outT]) { want = append(want, o) })
	if len(want) == 0 {
		t.Fatal("reference run emitted nothing")
	}

	for _, split := range []int{0, 3, 17, 31, 59, 60} {
		got := splitResume(t, events, split, mk, feed, closeOp)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("split %d: output diverged\ngot  %v\nwant %v", split, got, want)
		}
	}
}

func TestSessionWindowOpSnapshotResume(t *testing.T) {
	t0 := time.Unix(200_000, 0).UTC()
	var events []Event[int]
	for i := 0; i < 50; i++ {
		gap := time.Duration(i*3) * time.Second
		if i%9 == 8 {
			gap += 2 * time.Minute // force a session boundary
		}
		t0 = t0.Add(gap)
		events = append(events, Event[int]{Key: fmt.Sprintf("s%d", i%2), Time: t0, Value: 1})
	}
	enc := func(a int) ([]byte, error) { return json.Marshal(a) }
	dec := func(b []byte) (int, error) {
		var a int
		err := json.Unmarshal(b, &a)
		return a, err
	}
	type outT = WindowAggregate[int]
	mk := func() *SessionWindowOp[int, int] {
		return NewSessionWindowOp(
			time.Minute, 5*time.Second,
			func(w Window) int { return 0 },
			func(acc int, e Event[int]) int { return acc + e.Value },
			enc, dec,
		)
	}
	feed := func(op *SessionWindowOp[int, int], e Event[int], emit func(Event[outT])) { op.Feed(e, emit) }
	closeOp := func(op *SessionWindowOp[int, int], emit func(Event[outT])) { op.Close(emit) }

	var want []Event[outT]
	ref := mk()
	for _, e := range events {
		ref.Feed(e, func(o Event[outT]) { want = append(want, o) })
	}
	ref.Close(func(o Event[outT]) { want = append(want, o) })
	if len(want) < 2 {
		t.Fatalf("reference run emitted %d sessions, want several", len(want))
	}

	for _, split := range []int{0, 5, 23, 42, 50} {
		got := splitResume(t, events, split, mk, feed, closeOp)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("split %d: output diverged\ngot  %v\nwant %v", split, got, want)
		}
	}
}
