package stream

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSessionWindowSplitsOnGaps(t *testing.T) {
	// Key k: bursts at 0-20s, 100-110s; gap threshold 30s.
	events := []Event[int]{
		E("k", at(0), 1), E("k", at(10), 1), E("k", at(20), 1),
		E("k", at(100), 1), E("k", at(110), 1),
	}
	out := SessionWindow(FromSlice(events), 30*time.Second, 0,
		func(Window) int { return 0 },
		func(acc int, _ Event[int]) int { return acc + 1 },
	)
	got := Collect(out)
	if len(got) != 2 {
		t.Fatalf("sessions = %d, want 2: %+v", len(got), got)
	}
	if got[0].Value.Value != 3 || got[1].Value.Value != 2 {
		t.Errorf("session sizes = %d, %d", got[0].Value.Value, got[1].Value.Value)
	}
	if !got[0].Value.Window.Start.Equal(at(0)) || !got[0].Value.Window.End.Equal(at(20)) {
		t.Errorf("session 1 window = %+v", got[0].Value.Window)
	}
	if !got[1].Value.Window.Start.Equal(at(100)) {
		t.Errorf("session 2 window = %+v", got[1].Value.Window)
	}
}

func TestSessionWindowPerKey(t *testing.T) {
	events := []Event[int]{
		E("a", at(0), 1), E("b", at(5), 1), E("a", at(10), 1), E("b", at(90), 1),
	}
	out := SessionWindow(FromSlice(events), 30*time.Second, 0,
		func(Window) int { return 0 },
		func(acc int, _ Event[int]) int { return acc + 1 },
	)
	got := Collect(out)
	counts := map[string][]int{}
	for _, e := range got {
		counts[e.Key] = append(counts[e.Key], e.Value.Value)
	}
	if len(counts["a"]) != 1 || counts["a"][0] != 2 {
		t.Errorf("a sessions = %v", counts["a"])
	}
	if len(counts["b"]) != 2 {
		t.Errorf("b sessions = %v", counts["b"])
	}
}

func TestSessionWindowEarlyFiring(t *testing.T) {
	// A session fires as soon as the watermark passes its end + gap, before
	// the stream closes.
	events := []Event[int]{
		E("k", at(0), 1),
		E("k", at(200), 1), // watermark jumps: first session (end 0 + 30) fires
	}
	out := SessionWindow(FromSlice(events), 30*time.Second, 0,
		func(Window) int { return 0 },
		func(acc int, _ Event[int]) int { return acc + 1 },
	)
	first := <-out
	if first.Value.Value != 1 || !first.Value.Window.End.Equal(at(0)) {
		t.Errorf("first fired session = %+v", first.Value)
	}
	Collect(out)
}

func TestSessionWindowConservation(t *testing.T) {
	// Property: with no late drops, every event lands in exactly one
	// session, so session counts sum to the event count.
	f := func(gaps []uint8) bool {
		if len(gaps) == 0 || len(gaps) > 40 {
			return true
		}
		var events []Event[int]
		cur := 0
		for _, g := range gaps {
			cur += int(g%120) + 1 // strictly increasing times
			events = append(events, E("k", at(cur), 1))
		}
		out := SessionWindow(FromSlice(events), 45*time.Second, 0,
			func(Window) int { return 0 },
			func(acc int, _ Event[int]) int { return acc + 1 },
		)
		total := 0
		for e := range out {
			total += e.Value.Value
		}
		return total == len(events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTumblingWindowConservation(t *testing.T) {
	// Same conservation property for tumbling windows on ordered streams.
	f := func(steps []uint8) bool {
		if len(steps) == 0 || len(steps) > 60 {
			return true
		}
		var events []Event[int]
		cur := 0
		for _, s := range steps {
			cur += int(s % 30)
			events = append(events, E("k", at(cur), 1))
		}
		out := TumblingWindow(FromSlice(events), 40*time.Second, 0,
			func(Window) int { return 0 },
			func(acc int, _ Event[int]) int { return acc + 1 },
		)
		total := 0
		for e := range out {
			total += e.Value.Value
		}
		return total == len(events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
