package stream

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// This file adds checkpointable forms of the package's stateful operators.
// The channel-based operators (Process, TumblingWindow, SessionWindow, ...)
// own their processing loop, which leaves no safe point to capture state at;
// the *Op types below expose the same logic step-by-step — Feed one event,
// Close to flush — so a caller that owns the loop can Snapshot between
// events and Restore after a crash. Each channel operator is a thin wrapper
// that drives its Op, so both forms share one implementation.

// watermarkerSnapshot is the wire form of Watermarker's mutable state (the
// lateness allowance is configuration).
type watermarkerSnapshot struct {
	MaxTime   time.Time `json:"maxTime"`
	SeenFirst bool      `json:"seenFirst,omitempty"`
	Late      int64     `json:"late,omitempty"`
}

func (w *Watermarker) snapshot() watermarkerSnapshot {
	return watermarkerSnapshot{MaxTime: w.maxTime, SeenFirst: w.seenFirst, Late: w.Late}
}

func (w *Watermarker) restore(s watermarkerSnapshot) {
	w.maxTime = s.MaxTime
	w.seenFirst = s.SeenFirst
	w.Late = s.Late
}

// ProcessOp is the step-driven form of Process: a keyed stateful operator
// whose per-key state can be checkpointed. enc/dec translate a key's state
// to and from bytes; they may be nil when snapshots are not needed (Snapshot
// then fails). Not safe for concurrent use.
type ProcessOp[I, O, S any] struct {
	newState func(key string) *S
	f        func(state *S, e Event[I], emit func(Event[O]))
	onClose  func(key string, state *S, emit func(Event[O]))
	enc      func(*S) ([]byte, error)
	dec      func([]byte) (*S, error)
	states   map[string]*S
	m        *opMetrics // nil when uninstrumented
}

// NewProcessOp builds a resumable keyed operator. Arguments mirror Process,
// plus the state codec.
func NewProcessOp[I, O, S any](
	newState func(key string) *S,
	f func(state *S, e Event[I], emit func(Event[O])),
	onClose func(key string, state *S, emit func(Event[O])),
	enc func(*S) ([]byte, error),
	dec func([]byte) (*S, error),
) *ProcessOp[I, O, S] {
	return &ProcessOp[I, O, S]{
		newState: newState, f: f, onClose: onClose, enc: enc, dec: dec,
		states: make(map[string]*S),
	}
}

// Feed processes one event, emitting through the callback.
func (op *ProcessOp[I, O, S]) Feed(e Event[I], emit func(Event[O])) {
	if op.m != nil {
		op.m.in.Inc()
		emit = countEmit(op.m.out, emit)
	}
	st, ok := op.states[e.Key]
	if !ok {
		st = op.newState(e.Key)
		op.states[e.Key] = st
	}
	op.f(st, e, emit)
}

// Close flushes every key's state (sorted for determinism) via onClose.
func (op *ProcessOp[I, O, S]) Close(emit func(Event[O])) {
	if op.onClose == nil {
		return
	}
	keys := make([]string, 0, len(op.states))
	for k := range op.states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		op.onClose(k, op.states[k], emit)
	}
}

// Run drives the operator from a channel, giving the classic Process shape.
func (op *ProcessOp[I, O, S]) Run(in <-chan Event[I]) <-chan Event[O] {
	out := make(chan Event[O])
	go func() {
		defer close(out)
		emit := func(o Event[O]) { out <- o }
		for e := range in {
			op.Feed(e, emit)
		}
		op.Close(emit)
	}()
	return out
}

// Snapshot encodes every key's state (checkpoint.Snapshotter).
func (op *ProcessOp[I, O, S]) Snapshot() ([]byte, error) {
	if op.enc == nil {
		return nil, fmt.Errorf("stream: ProcessOp has no state encoder")
	}
	blobs := make(map[string][]byte, len(op.states))
	for k, st := range op.states {
		b, err := op.enc(st)
		if err != nil {
			return nil, fmt.Errorf("stream: encoding state for key %q: %w", k, err)
		}
		blobs[k] = b
	}
	return json.Marshal(blobs)
}

// Restore replaces the operator's state with a snapshot taken by Snapshot.
func (op *ProcessOp[I, O, S]) Restore(data []byte) error {
	if op.dec == nil {
		return fmt.Errorf("stream: ProcessOp has no state decoder")
	}
	var blobs map[string][]byte
	if err := json.Unmarshal(data, &blobs); err != nil {
		return fmt.Errorf("stream: restore ProcessOp: %w", err)
	}
	states := make(map[string]*S, len(blobs))
	for k, b := range blobs {
		st, err := op.dec(b)
		if err != nil {
			return fmt.Errorf("stream: decoding state for key %q: %w", k, err)
		}
		states[k] = st
	}
	op.states = states
	return nil
}

// winKey identifies an open time window: (key, window start).
type winKey struct {
	key   string
	start int64
}

// WindowOp is the step-driven form of TumblingWindow/SlidingWindow with
// checkpointable open-window state. Not safe for concurrent use.
type WindowOp[I, A any] struct {
	size, slide time.Duration
	wm          *Watermarker
	init        func(w Window) A
	add         func(acc A, e Event[I]) A
	enc         func(A) ([]byte, error)
	dec         func([]byte) (A, error)
	open        map[winKey]*windowState[A]
	m           *opMetrics // nil when uninstrumented
}

// NewWindowOp builds a resumable window operator; slide == size gives
// tumbling windows. enc/dec may be nil when snapshots are not needed.
func NewWindowOp[I, A any](
	size, slide time.Duration,
	allowedLateness time.Duration,
	init func(w Window) A,
	add func(acc A, e Event[I]) A,
	enc func(A) ([]byte, error),
	dec func([]byte) (A, error),
) *WindowOp[I, A] {
	if slide <= 0 {
		slide = size
	}
	return &WindowOp[I, A]{
		size: size, slide: slide,
		wm:   NewWatermarker(allowedLateness),
		init: init, add: add, enc: enc, dec: dec,
		open: make(map[winKey]*windowState[A]),
	}
}

func (op *WindowOp[I, A]) fire(upTo time.Time, all bool, emit func(Event[WindowAggregate[A]])) {
	ready := make([]*windowState[A], 0, len(op.open))
	for k, ws := range op.open {
		if all || !ws.win.End.After(upTo) {
			ready = append(ready, ws)
			delete(op.open, k)
		}
	}
	sort.Slice(ready, func(i, j int) bool {
		if !ready[i].win.End.Equal(ready[j].win.End) {
			return ready[i].win.End.Before(ready[j].win.End)
		}
		return ready[i].win.Key < ready[j].win.Key
	})
	for _, ws := range ready {
		emit(Event[WindowAggregate[A]]{
			Key:   ws.win.Key,
			Time:  ws.win.End,
			Value: WindowAggregate[A]{Window: ws.win, Value: ws.acc},
		})
	}
}

// Feed assigns one event to its windows and fires any window the advancing
// watermark completed.
func (op *WindowOp[I, A]) Feed(e Event[I], emit func(Event[WindowAggregate[A]])) {
	if op.m != nil {
		op.m.in.Inc()
		emit = countEmit(op.m.out, emit)
		op.m.observeFreshness(e.Time)
		defer func() {
			op.m.open.Set(float64(len(op.open)))
			op.m.disorder.Set(op.wm.maxTime.Sub(e.Time).Seconds())
			op.m.setWatermark(op.wm.Watermark())
		}()
	}
	if !op.wm.Observe(e.Time) {
		op.m.lateDrop(e.Time)
		return // late beyond allowance: drop
	}
	t := e.Time.UnixNano()
	sz, sl := op.size.Nanoseconds(), op.slide.Nanoseconds()
	// First window start covering t: the largest multiple of slide that is
	// > t-size, i.e. start in (t-size, t].
	first := (t-sz)/sl*sl + sl
	if t-sz < 0 && (t-sz)%sl != 0 {
		first -= sl // floor division for negatives
	}
	for s := first; s <= t; s += sl {
		start := time.Unix(0, s).UTC()
		wk := winKey{key: e.Key, start: s}
		ws, ok := op.open[wk]
		if !ok {
			win := Window{Key: e.Key, Start: start, End: start.Add(op.size)}
			ws = &windowState[A]{win: win, acc: op.init(win)}
			op.open[wk] = ws
		}
		ws.acc = op.add(ws.acc, e)
	}
	op.fire(op.wm.Watermark(), false, emit)
}

// Close fires every remaining open window.
func (op *WindowOp[I, A]) Close(emit func(Event[WindowAggregate[A]])) {
	op.fire(time.Time{}, true, emit)
}

// Run drives the operator from a channel.
func (op *WindowOp[I, A]) Run(in <-chan Event[I]) <-chan Event[WindowAggregate[A]] {
	out := make(chan Event[WindowAggregate[A]])
	go func() {
		defer close(out)
		emit := func(o Event[WindowAggregate[A]]) { out <- o }
		for e := range in {
			op.Feed(e, emit)
		}
		op.Close(emit)
	}()
	return out
}

// openWindowSnapshot is the wire form of one open window.
type openWindowSnapshot struct {
	Key   string `json:"key"`
	Start int64  `json:"start"` // UnixNano of the window start
	Acc   []byte `json:"acc"`
}

type windowOpSnapshot struct {
	Watermark watermarkerSnapshot  `json:"wm"`
	Open      []openWindowSnapshot `json:"open,omitempty"`
}

// Snapshot encodes the watermark state and every open window
// (checkpoint.Snapshotter).
func (op *WindowOp[I, A]) Snapshot() ([]byte, error) {
	if op.enc == nil {
		return nil, fmt.Errorf("stream: WindowOp has no accumulator encoder")
	}
	snap := windowOpSnapshot{Watermark: op.wm.snapshot()}
	for wk, ws := range op.open {
		b, err := op.enc(ws.acc)
		if err != nil {
			return nil, fmt.Errorf("stream: encoding window %q@%d: %w", wk.key, wk.start, err)
		}
		snap.Open = append(snap.Open, openWindowSnapshot{Key: wk.key, Start: wk.start, Acc: b})
	}
	sort.Slice(snap.Open, func(i, j int) bool {
		if snap.Open[i].Key != snap.Open[j].Key {
			return snap.Open[i].Key < snap.Open[j].Key
		}
		return snap.Open[i].Start < snap.Open[j].Start
	})
	return json.Marshal(snap)
}

// Restore replaces the operator's state with a snapshot taken by Snapshot.
func (op *WindowOp[I, A]) Restore(data []byte) error {
	if op.dec == nil {
		return fmt.Errorf("stream: WindowOp has no accumulator decoder")
	}
	var snap windowOpSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("stream: restore WindowOp: %w", err)
	}
	open := make(map[winKey]*windowState[A], len(snap.Open))
	for _, ow := range snap.Open {
		acc, err := op.dec(ow.Acc)
		if err != nil {
			return fmt.Errorf("stream: decoding window %q@%d: %w", ow.Key, ow.Start, err)
		}
		start := time.Unix(0, ow.Start).UTC()
		win := Window{Key: ow.Key, Start: start, End: start.Add(op.size)}
		open[winKey{key: ow.Key, start: ow.Start}] = &windowState[A]{win: win, acc: acc}
	}
	op.open = open
	op.wm.restore(snap.Watermark)
	return nil
}

// session is one open gap-separated session.
type session[A any] struct {
	win Window
	acc A
}

// SessionWindowOp is the step-driven form of SessionWindow with
// checkpointable open-session state. Not safe for concurrent use.
type SessionWindowOp[I, A any] struct {
	gap  time.Duration
	wm   *Watermarker
	init func(w Window) A
	add  func(acc A, e Event[I]) A
	enc  func(A) ([]byte, error)
	dec  func([]byte) (A, error)
	open map[string]*session[A]
	m    *opMetrics // nil when uninstrumented
}

// NewSessionWindowOp builds a resumable session-window operator. enc/dec may
// be nil when snapshots are not needed.
func NewSessionWindowOp[I, A any](
	gap time.Duration,
	allowedLateness time.Duration,
	init func(w Window) A,
	add func(acc A, e Event[I]) A,
	enc func(A) ([]byte, error),
	dec func([]byte) (A, error),
) *SessionWindowOp[I, A] {
	return &SessionWindowOp[I, A]{
		gap:  gap,
		wm:   NewWatermarker(allowedLateness),
		init: init, add: add, enc: enc, dec: dec,
		open: make(map[string]*session[A]),
	}
}

func (op *SessionWindowOp[I, A]) emitSession(s *session[A], emit func(Event[WindowAggregate[A]])) {
	emit(Event[WindowAggregate[A]]{
		Key:   s.win.Key,
		Time:  s.win.End,
		Value: WindowAggregate[A]{Window: s.win, Value: s.acc},
	})
}

func (op *SessionWindowOp[I, A]) fire(upTo time.Time, all bool, emit func(Event[WindowAggregate[A]])) {
	ready := make([]*session[A], 0, len(op.open))
	for k, s := range op.open {
		if all || !s.win.End.Add(op.gap).After(upTo) {
			ready = append(ready, s)
			delete(op.open, k)
		}
	}
	sort.Slice(ready, func(i, j int) bool {
		if !ready[i].win.End.Equal(ready[j].win.End) {
			return ready[i].win.End.Before(ready[j].win.End)
		}
		return ready[i].win.Key < ready[j].win.Key
	})
	for _, s := range ready {
		op.emitSession(s, emit)
	}
}

// Feed folds one event into its key's session, closing the previous session
// when the gap was exceeded, then fires sessions completed by the watermark.
func (op *SessionWindowOp[I, A]) Feed(e Event[I], emit func(Event[WindowAggregate[A]])) {
	if op.m != nil {
		op.m.in.Inc()
		emit = countEmit(op.m.out, emit)
		op.m.observeFreshness(e.Time)
		defer func() {
			op.m.open.Set(float64(len(op.open)))
			op.m.disorder.Set(op.wm.maxTime.Sub(e.Time).Seconds())
			op.m.setWatermark(op.wm.Watermark())
		}()
	}
	if !op.wm.Observe(e.Time) {
		op.m.lateDrop(e.Time)
		return
	}
	s, ok := op.open[e.Key]
	if ok && e.Time.Sub(s.win.End) > op.gap {
		// Silence exceeded the gap: the old session is complete.
		op.emitSession(s, emit)
		ok = false
	}
	if !ok {
		win := Window{Key: e.Key, Start: e.Time, End: e.Time}
		s = &session[A]{win: win, acc: op.init(win)}
		op.open[e.Key] = s
	}
	if e.Time.After(s.win.End) {
		s.win.End = e.Time
	}
	if e.Time.Before(s.win.Start) {
		s.win.Start = e.Time // late-but-allowed event extends backwards
	}
	s.acc = op.add(s.acc, e)
	op.fire(op.wm.Watermark(), false, emit)
}

// Close fires every remaining open session.
func (op *SessionWindowOp[I, A]) Close(emit func(Event[WindowAggregate[A]])) {
	op.fire(time.Time{}, true, emit)
}

// Run drives the operator from a channel.
func (op *SessionWindowOp[I, A]) Run(in <-chan Event[I]) <-chan Event[WindowAggregate[A]] {
	out := make(chan Event[WindowAggregate[A]])
	go func() {
		defer close(out)
		emit := func(o Event[WindowAggregate[A]]) { out <- o }
		for e := range in {
			op.Feed(e, emit)
		}
		op.Close(emit)
	}()
	return out
}

// openSessionSnapshot is the wire form of one open session.
type openSessionSnapshot struct {
	Key   string `json:"key"`
	Start int64  `json:"start"` // UnixNano
	End   int64  `json:"end"`   // UnixNano
	Acc   []byte `json:"acc"`
}

type sessionOpSnapshot struct {
	Watermark watermarkerSnapshot   `json:"wm"`
	Open      []openSessionSnapshot `json:"open,omitempty"`
}

// Snapshot encodes the watermark state and every open session
// (checkpoint.Snapshotter).
func (op *SessionWindowOp[I, A]) Snapshot() ([]byte, error) {
	if op.enc == nil {
		return nil, fmt.Errorf("stream: SessionWindowOp has no accumulator encoder")
	}
	snap := sessionOpSnapshot{Watermark: op.wm.snapshot()}
	for k, s := range op.open {
		b, err := op.enc(s.acc)
		if err != nil {
			return nil, fmt.Errorf("stream: encoding session %q: %w", k, err)
		}
		snap.Open = append(snap.Open, openSessionSnapshot{
			Key: k, Start: s.win.Start.UnixNano(), End: s.win.End.UnixNano(), Acc: b,
		})
	}
	sort.Slice(snap.Open, func(i, j int) bool { return snap.Open[i].Key < snap.Open[j].Key })
	return json.Marshal(snap)
}

// Restore replaces the operator's state with a snapshot taken by Snapshot.
func (op *SessionWindowOp[I, A]) Restore(data []byte) error {
	if op.dec == nil {
		return fmt.Errorf("stream: SessionWindowOp has no accumulator decoder")
	}
	var snap sessionOpSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("stream: restore SessionWindowOp: %w", err)
	}
	open := make(map[string]*session[A], len(snap.Open))
	for _, os := range snap.Open {
		acc, err := op.dec(os.Acc)
		if err != nil {
			return fmt.Errorf("stream: decoding session %q: %w", os.Key, err)
		}
		open[os.Key] = &session[A]{
			win: Window{Key: os.Key, Start: time.Unix(0, os.Start).UTC(), End: time.Unix(0, os.End).UTC()},
			acc: acc,
		}
	}
	op.open = open
	op.wm.restore(snap.Watermark)
	return nil
}

// JSONCodec returns a JSON encoder/decoder pair for a snapshot-friendly
// state type — a convenience for building resumable operators.
func JSONCodec[S any]() (func(*S) ([]byte, error), func([]byte) (*S, error)) {
	enc := func(s *S) ([]byte, error) { return json.Marshal(s) }
	dec := func(b []byte) (*S, error) {
		s := new(S)
		if err := json.Unmarshal(b, s); err != nil {
			return nil, err
		}
		return s, nil
	}
	return enc, dec
}
