package stream

import (
	"log/slog"
	"time"

	"datacron/internal/obs"
)

// opMetrics caches one operator's metric handles, resolved once at
// Instrument time so Feed never touches the registry. Which handles are
// populated depends on the operator kind: keyed process operators count
// in/out, window operators additionally track late drops, fired windows,
// open-window depth, event-time disorder and the watermark itself (the
// health watchdog pairs "stream.<name>.watermark.unixsec" with
// "stream.<name>.in" to detect a stalled operator).
type opMetrics struct {
	name      string
	in        *obs.Counter
	out       *obs.Counter
	late      *obs.Counter
	open      *obs.Gauge
	disorder  *obs.Gauge // seconds the current event trails the stream front
	watermark *obs.Gauge // current watermark as unix seconds
	clock     obs.Clock
	lag       obs.LagStage // event-time freshness at this operator
	log       *slog.Logger
}

func newProcessMetrics(reg *obs.Registry, name string) *opMetrics {
	return &opMetrics{
		name: name,
		in:   reg.Counter("stream." + name + ".in"),
		out:  reg.Counter("stream." + name + ".out"),
		log:  obs.NopLogger(),
	}
}

func newWindowMetrics(reg *obs.Registry, name string) *opMetrics {
	return &opMetrics{
		name:      name,
		in:        reg.Counter("stream." + name + ".in"),
		out:       reg.Counter("stream." + name + ".fired"),
		late:      reg.Counter("stream." + name + ".late"),
		open:      reg.Gauge("stream." + name + ".open_windows"),
		disorder:  reg.Gauge("stream." + name + ".disorder.seconds"),
		watermark: reg.Gauge("stream." + name + ".watermark.unixsec"),
		clock:     reg.Clock(),
		// Freshness at the operator ("lag.stream.<name>.*"): processing
		// time minus event time for each fed event, with the max as the
		// operator's freshness watermark.
		lag: obs.NewLagStage(reg, "stream."+name),
		log: obs.NopLogger(),
	}
}

// lateDrop counts one late-beyond-allowance drop; nil-safe so the drop
// path needs no instrumentation branch of its own.
func (m *opMetrics) lateDrop(t time.Time) {
	if m == nil {
		return
	}
	m.late.Inc()
	m.log.Debug("late event dropped", "op", m.name, "eventTime", t)
}

// setWatermark publishes the operator's watermark; the zero time (no event
// observed yet) is not a watermark and is skipped.
func (m *opMetrics) setWatermark(t time.Time) {
	if t.IsZero() {
		return
	}
	m.watermark.Set(float64(t.Unix()))
}

// observeFreshness records one event's lag at this operator.
func (m *opMetrics) observeFreshness(event time.Time) {
	m.lag.Observe(m.clock.Now(), event)
}

// setLogger attaches a component logger to instrumented operators; a nil
// receiver (uninstrumented operator) drops it.
func (m *opMetrics) setLogger(l *slog.Logger) {
	if m == nil {
		return
	}
	m.log = obs.Component(l, "stream")
}

// countEmit wraps an emit callback to count emissions.
func countEmit[O any](c *obs.Counter, emit func(Event[O])) func(Event[O]) {
	return func(o Event[O]) {
		c.Inc()
		emit(o)
	}
}

// Instrument attaches per-operator counters under "stream.<name>.*" —
// events in, events out — and returns the operator for chaining. A nil
// registry detaches instrumentation.
func (op *ProcessOp[I, O, S]) Instrument(reg *obs.Registry, name string) *ProcessOp[I, O, S] {
	if reg == nil {
		op.m = nil
		return op
	}
	op.m = newProcessMetrics(reg, name)
	return op
}

// Instrument attaches window metrics under "stream.<name>.*": events in,
// windows fired, late drops, open-window depth and event-time disorder.
// Returns the operator for chaining. A nil registry detaches.
func (op *WindowOp[I, A]) Instrument(reg *obs.Registry, name string) *WindowOp[I, A] {
	if reg == nil {
		op.m = nil
		return op
	}
	op.m = newWindowMetrics(reg, name)
	return op
}

// Instrument attaches session-window metrics under "stream.<name>.*";
// see WindowOp.Instrument. A nil registry detaches.
func (op *SessionWindowOp[I, A]) Instrument(reg *obs.Registry, name string) *SessionWindowOp[I, A] {
	if reg == nil {
		op.m = nil
		return op
	}
	op.m = newWindowMetrics(reg, name)
	return op
}

// SetLogger attaches a structured logger; instrumented operators log late
// drops through it at debug level. A no-op before Instrument.
func (op *ProcessOp[I, O, S]) SetLogger(l *slog.Logger) *ProcessOp[I, O, S] {
	op.m.setLogger(l)
	return op
}

// SetLogger attaches a structured logger; see ProcessOp.SetLogger.
func (op *WindowOp[I, A]) SetLogger(l *slog.Logger) *WindowOp[I, A] {
	op.m.setLogger(l)
	return op
}

// SetLogger attaches a structured logger; see ProcessOp.SetLogger.
func (op *SessionWindowOp[I, A]) SetLogger(l *slog.Logger) *SessionWindowOp[I, A] {
	op.m.setLogger(l)
	return op
}

// WatermarkStats is a value-type snapshot of event-time progress.
type WatermarkStats struct {
	Watermark    time.Time // current watermark (zero before any event)
	MaxEventTime time.Time // stream front: latest event time observed
	Late         int64     // events observed at or before the watermark
}

// Stats captures the watermarker's progress. Like the operators that own
// watermarkers it must be called from the processing goroutine.
func (w *Watermarker) Stats() WatermarkStats {
	return WatermarkStats{Watermark: w.Watermark(), MaxEventTime: w.maxTime, Late: w.Late}
}

// Watermark exposes a window operator's event-time progress.
func (op *WindowOp[I, A]) Watermark() WatermarkStats { return op.wm.Stats() }

// Watermark exposes a session operator's event-time progress.
func (op *SessionWindowOp[I, A]) Watermark() WatermarkStats { return op.wm.Stats() }
