package stream

import (
	"time"

	"datacron/internal/obs"
)

// opMetrics caches one operator's metric handles, resolved once at
// Instrument time so Feed never touches the registry. Which handles are
// populated depends on the operator kind: keyed process operators count
// in/out, window operators additionally track late drops, fired windows,
// open-window depth and event-time disorder.
type opMetrics struct {
	in       *obs.Counter
	out      *obs.Counter
	late     *obs.Counter
	open     *obs.Gauge
	disorder *obs.Gauge // seconds the current event trails the stream front
}

func newProcessMetrics(reg *obs.Registry, name string) *opMetrics {
	return &opMetrics{
		in:  reg.Counter("stream." + name + ".in"),
		out: reg.Counter("stream." + name + ".out"),
	}
}

func newWindowMetrics(reg *obs.Registry, name string) *opMetrics {
	return &opMetrics{
		in:       reg.Counter("stream." + name + ".in"),
		out:      reg.Counter("stream." + name + ".fired"),
		late:     reg.Counter("stream." + name + ".late"),
		open:     reg.Gauge("stream." + name + ".open_windows"),
		disorder: reg.Gauge("stream." + name + ".disorder.seconds"),
	}
}

// lateDrop counts one late-beyond-allowance drop; nil-safe so the drop
// path needs no instrumentation branch of its own.
func (m *opMetrics) lateDrop() {
	if m == nil {
		return
	}
	m.late.Inc()
}

// countEmit wraps an emit callback to count emissions.
func countEmit[O any](c *obs.Counter, emit func(Event[O])) func(Event[O]) {
	return func(o Event[O]) {
		c.Inc()
		emit(o)
	}
}

// Instrument attaches per-operator counters under "stream.<name>.*" —
// events in, events out — and returns the operator for chaining. A nil
// registry detaches instrumentation.
func (op *ProcessOp[I, O, S]) Instrument(reg *obs.Registry, name string) *ProcessOp[I, O, S] {
	if reg == nil {
		op.m = nil
		return op
	}
	op.m = newProcessMetrics(reg, name)
	return op
}

// Instrument attaches window metrics under "stream.<name>.*": events in,
// windows fired, late drops, open-window depth and event-time disorder.
// Returns the operator for chaining. A nil registry detaches.
func (op *WindowOp[I, A]) Instrument(reg *obs.Registry, name string) *WindowOp[I, A] {
	if reg == nil {
		op.m = nil
		return op
	}
	op.m = newWindowMetrics(reg, name)
	return op
}

// Instrument attaches session-window metrics under "stream.<name>.*";
// see WindowOp.Instrument. A nil registry detaches.
func (op *SessionWindowOp[I, A]) Instrument(reg *obs.Registry, name string) *SessionWindowOp[I, A] {
	if reg == nil {
		op.m = nil
		return op
	}
	op.m = newWindowMetrics(reg, name)
	return op
}

// WatermarkStats is a value-type snapshot of event-time progress.
type WatermarkStats struct {
	Watermark    time.Time // current watermark (zero before any event)
	MaxEventTime time.Time // stream front: latest event time observed
	Late         int64     // events observed at or before the watermark
}

// Stats captures the watermarker's progress. Like the operators that own
// watermarkers it must be called from the processing goroutine.
func (w *Watermarker) Stats() WatermarkStats {
	return WatermarkStats{Watermark: w.Watermark(), MaxEventTime: w.maxTime, Late: w.Late}
}

// Watermark exposes a window operator's event-time progress.
func (op *WindowOp[I, A]) Watermark() WatermarkStats { return op.wm.Stats() }

// Watermark exposes a session operator's event-time progress.
func (op *SessionWindowOp[I, A]) Watermark() WatermarkStats { return op.wm.Stats() }
