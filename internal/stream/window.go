package stream

import (
	"sort"
	"time"
)

// Watermarker tracks event-time progress with a bounded-out-of-orderness
// policy: the watermark is the maximum observed event time minus the
// configured lateness allowance. Events at or before the current watermark
// are late.
type Watermarker struct {
	maxTime   time.Time
	lateness  time.Duration
	seenFirst bool
	Late      int64 // count of late events observed via Observe
}

// NewWatermarker returns a watermarker tolerating the given out-of-orderness.
func NewWatermarker(allowedLateness time.Duration) *Watermarker {
	return &Watermarker{lateness: allowedLateness}
}

// Observe advances the watermark with an event time and reports whether the
// event is on time (true) or late (false).
func (w *Watermarker) Observe(t time.Time) bool {
	if !w.seenFirst || t.After(w.maxTime) {
		w.maxTime = t
		w.seenFirst = true
	}
	if t.Before(w.Watermark()) {
		w.Late++
		return false
	}
	return true
}

// Watermark returns the current watermark; the zero time before any event.
func (w *Watermarker) Watermark() time.Time {
	if !w.seenFirst {
		return time.Time{}
	}
	return w.maxTime.Add(-w.lateness)
}

// Window identifies a time window [Start, End) for a key.
type Window struct {
	Key   string
	Start time.Time
	End   time.Time
}

// WindowAggregate holds a fired window and its aggregate value.
type WindowAggregate[A any] struct {
	Window Window
	Value  A
}

// windowState is one open window's accumulator.
type windowState[A any] struct {
	win Window
	acc A
}

// TumblingWindow assigns events to fixed, non-overlapping windows of the
// given size per key, folds them with add, and emits each window's aggregate
// once the watermark passes the window end (or the stream closes). Windows
// are aligned to the Unix epoch. Late events beyond allowedLateness are
// dropped.
func TumblingWindow[I, A any](
	in <-chan Event[I],
	size time.Duration,
	allowedLateness time.Duration,
	init func(w Window) A,
	add func(acc A, e Event[I]) A,
) <-chan Event[WindowAggregate[A]] {
	return slidingWindow(in, size, size, allowedLateness, init, add)
}

// SlidingWindow assigns events to overlapping windows of the given size
// sliding by slide (slide <= size), folding and firing as TumblingWindow.
func SlidingWindow[I, A any](
	in <-chan Event[I],
	size, slide time.Duration,
	allowedLateness time.Duration,
	init func(w Window) A,
	add func(acc A, e Event[I]) A,
) <-chan Event[WindowAggregate[A]] {
	return slidingWindow(in, size, slide, allowedLateness, init, add)
}

func slidingWindow[I, A any](
	in <-chan Event[I],
	size, slide time.Duration,
	allowedLateness time.Duration,
	init func(w Window) A,
	add func(acc A, e Event[I]) A,
) <-chan Event[WindowAggregate[A]] {
	if slide <= 0 {
		slide = size
	}
	out := make(chan Event[WindowAggregate[A]])
	go func() {
		defer close(out)
		wm := NewWatermarker(allowedLateness)
		// open windows keyed by (key, window start).
		type winKey struct {
			key   string
			start int64
		}
		open := make(map[winKey]*windowState[A])

		fire := func(upTo time.Time, all bool) {
			// Collect fireable windows, emit in deterministic order.
			var ready []*windowState[A]
			for k, ws := range open {
				if all || !ws.win.End.After(upTo) {
					ready = append(ready, ws)
					delete(open, k)
				}
			}
			sort.Slice(ready, func(i, j int) bool {
				if !ready[i].win.End.Equal(ready[j].win.End) {
					return ready[i].win.End.Before(ready[j].win.End)
				}
				return ready[i].win.Key < ready[j].win.Key
			})
			for _, ws := range ready {
				out <- Event[WindowAggregate[A]]{
					Key:   ws.win.Key,
					Time:  ws.win.End,
					Value: WindowAggregate[A]{Window: ws.win, Value: ws.acc},
				}
			}
		}

		for e := range in {
			if !wm.Observe(e.Time) {
				continue // late beyond allowance: drop
			}
			// Assign to every window containing e.Time.
			t := e.Time.UnixNano()
			sz, sl := size.Nanoseconds(), slide.Nanoseconds()
			// First window start covering t: the largest multiple of slide
			// that is > t-size, i.e. start in (t-size, t].
			first := (t-sz)/sl*sl + sl
			if t-sz < 0 && (t-sz)%sl != 0 {
				first -= sl // floor division for negatives
			}
			for s := first; s <= t; s += sl {
				start := time.Unix(0, s).UTC()
				wk := winKey{key: e.Key, start: s}
				ws, ok := open[wk]
				if !ok {
					win := Window{Key: e.Key, Start: start, End: start.Add(size)}
					ws = &windowState[A]{win: win, acc: init(win)}
					open[wk] = ws
				}
				ws.acc = add(ws.acc, e)
			}
			fire(wm.Watermark(), false)
		}
		fire(time.Time{}, true)
	}()
	return out
}
