package stream

import (
	"time"
)

// Watermarker tracks event-time progress with a bounded-out-of-orderness
// policy: the watermark is the maximum observed event time minus the
// configured lateness allowance. Events at or before the current watermark
// are late.
type Watermarker struct {
	maxTime   time.Time
	lateness  time.Duration
	seenFirst bool
	Late      int64 // count of late events observed via Observe
}

// NewWatermarker returns a watermarker tolerating the given out-of-orderness.
func NewWatermarker(allowedLateness time.Duration) *Watermarker {
	return &Watermarker{lateness: allowedLateness}
}

// Observe advances the watermark with an event time and reports whether the
// event is on time (true) or late (false).
func (w *Watermarker) Observe(t time.Time) bool {
	if !w.seenFirst || t.After(w.maxTime) {
		w.maxTime = t
		w.seenFirst = true
	}
	if t.Before(w.Watermark()) {
		w.Late++
		return false
	}
	return true
}

// Watermark returns the current watermark; the zero time before any event.
func (w *Watermarker) Watermark() time.Time {
	if !w.seenFirst {
		return time.Time{}
	}
	return w.maxTime.Add(-w.lateness)
}

// Window identifies a time window [Start, End) for a key.
type Window struct {
	Key   string
	Start time.Time
	End   time.Time
}

// WindowAggregate holds a fired window and its aggregate value.
type WindowAggregate[A any] struct {
	Window Window
	Value  A
}

// windowState is one open window's accumulator.
type windowState[A any] struct {
	win Window
	acc A
}

// TumblingWindow assigns events to fixed, non-overlapping windows of the
// given size per key, folds them with add, and emits each window's aggregate
// once the watermark passes the window end (or the stream closes). Windows
// are aligned to the Unix epoch. Late events beyond allowedLateness are
// dropped.
func TumblingWindow[I, A any](
	in <-chan Event[I],
	size time.Duration,
	allowedLateness time.Duration,
	init func(w Window) A,
	add func(acc A, e Event[I]) A,
) <-chan Event[WindowAggregate[A]] {
	return slidingWindow(in, size, size, allowedLateness, init, add)
}

// SlidingWindow assigns events to overlapping windows of the given size
// sliding by slide (slide <= size), folding and firing as TumblingWindow.
func SlidingWindow[I, A any](
	in <-chan Event[I],
	size, slide time.Duration,
	allowedLateness time.Duration,
	init func(w Window) A,
	add func(acc A, e Event[I]) A,
) <-chan Event[WindowAggregate[A]] {
	return slidingWindow(in, size, slide, allowedLateness, init, add)
}

func slidingWindow[I, A any](
	in <-chan Event[I],
	size, slide time.Duration,
	allowedLateness time.Duration,
	init func(w Window) A,
	add func(acc A, e Event[I]) A,
) <-chan Event[WindowAggregate[A]] {
	return NewWindowOp(size, slide, allowedLateness, init, add, nil, nil).Run(in)
}
