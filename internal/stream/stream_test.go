package stream

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"datacron/internal/shard"
)

var t0 = time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

func ints(key string, vals ...int) []Event[int] {
	out := make([]Event[int], len(vals))
	for i, v := range vals {
		out[i] = E(key, at(i), v)
	}
	return out
}

func TestMapFilterCollect(t *testing.T) {
	in := FromSlice(ints("a", 1, 2, 3, 4, 5))
	doubled := Map(in, func(e Event[int]) int { return e.Value * 2 })
	evens := Filter(doubled, func(e Event[int]) bool { return e.Value%4 == 0 })
	got := Collect(evens)
	want := []int{4, 8}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Value != want[i] {
			t.Errorf("event %d = %d, want %d", i, got[i].Value, want[i])
		}
		if got[i].Key != "a" {
			t.Errorf("key not preserved: %q", got[i].Key)
		}
	}
}

func TestFlatMap(t *testing.T) {
	in := FromSlice(ints("k", 1, 2, 3))
	out := FlatMap(in, func(e Event[int], emit func(Event[string])) {
		for i := 0; i < e.Value; i++ {
			emit(E(e.Key, e.Time, fmt.Sprintf("%d.%d", e.Value, i)))
		}
	})
	got := Collect(out)
	if len(got) != 6 {
		t.Fatalf("got %d events, want 6", len(got))
	}
	if got[0].Value != "1.0" || got[5].Value != "3.2" {
		t.Errorf("unexpected values: %v, %v", got[0].Value, got[5].Value)
	}
}

func TestKeyBy(t *testing.T) {
	in := FromSlice(ints("old", 1, 2, 3, 4))
	rekeyed := KeyBy(in, func(e Event[int]) string {
		if e.Value%2 == 0 {
			return "even"
		}
		return "odd"
	})
	got := Collect(rekeyed)
	for _, e := range got {
		want := "odd"
		if e.Value%2 == 0 {
			want = "even"
		}
		if e.Key != want {
			t.Errorf("value %d keyed %q, want %q", e.Value, e.Key, want)
		}
	}
}

func TestProcessKeyedState(t *testing.T) {
	// Running per-key sum with a flush on close.
	events := []Event[int]{
		E("a", at(0), 1), E("b", at(1), 10), E("a", at(2), 2),
		E("b", at(3), 20), E("a", at(4), 3),
	}
	type sum struct{ total int }
	out := Process(FromSlice(events),
		func(key string) *sum { return &sum{} },
		func(s *sum, e Event[int], emit func(Event[int])) {
			s.total += e.Value
		},
		func(key string, s *sum, emit func(Event[int])) {
			emit(E(key, at(100), s.total))
		},
	)
	got := Collect(out)
	if len(got) != 2 {
		t.Fatalf("got %d flush events, want 2", len(got))
	}
	// onClose iterates keys in sorted order.
	if got[0].Key != "a" || got[0].Value != 6 {
		t.Errorf("a sum = %+v", got[0])
	}
	if got[1].Key != "b" || got[1].Value != 30 {
		t.Errorf("b sum = %+v", got[1])
	}
}

func TestProcessEmitDuringProcessing(t *testing.T) {
	// Emit deltas between consecutive per-key values.
	events := []Event[int]{
		E("x", at(0), 10), E("x", at(1), 13), E("x", at(2), 11),
	}
	type prev struct {
		v   int
		set bool
	}
	out := Process(FromSlice(events),
		func(string) *prev { return &prev{} },
		func(p *prev, e Event[int], emit func(Event[int])) {
			if p.set {
				emit(E(e.Key, e.Time, e.Value-p.v))
			}
			p.v, p.set = e.Value, true
		},
		nil,
	)
	got := Collect(out)
	if len(got) != 2 || got[0].Value != 3 || got[1].Value != -2 {
		t.Errorf("deltas = %v", got)
	}
}

func TestMergePreservesAll(t *testing.T) {
	a := FromSlice(ints("a", 1, 2, 3))
	b := FromSlice(ints("b", 4, 5))
	got := Collect(Merge(a, b))
	if len(got) != 5 {
		t.Fatalf("merged %d events, want 5", len(got))
	}
	sum := 0
	for _, e := range got {
		sum += e.Value
	}
	if sum != 15 {
		t.Errorf("sum = %d, want 15", sum)
	}
}

func TestMergePerInputOrder(t *testing.T) {
	a := FromSlice(ints("a", 1, 2, 3, 4, 5, 6, 7, 8))
	b := FromSlice(ints("b", 10, 20, 30))
	got := Collect(Merge(a, b))
	lastA, lastB := -1, -1
	for _, e := range got {
		switch e.Key {
		case "a":
			if e.Value <= lastA {
				t.Fatal("per-input order violated for a")
			}
			lastA = e.Value
		case "b":
			if e.Value <= lastB {
				t.Fatal("per-input order violated for b")
			}
			lastB = e.Value
		}
	}
}

func TestTee(t *testing.T) {
	in := FromSlice(ints("k", 1, 2, 3, 4))
	outs := Tee(in, 3, 8)
	var sums [3]int
	done := make(chan struct{}, 3)
	for i, o := range outs {
		go func(i int, o <-chan Event[int]) {
			for e := range o {
				sums[i] += e.Value
			}
			done <- struct{}{}
		}(i, o)
	}
	for i := 0; i < 3; i++ {
		<-done
	}
	for i, s := range sums {
		if s != 10 {
			t.Errorf("branch %d sum = %d, want 10", i, s)
		}
	}
}

func TestWatermarker(t *testing.T) {
	wm := NewWatermarker(5 * time.Second)
	if !wm.Watermark().IsZero() {
		t.Error("watermark before any event should be zero")
	}
	if !wm.Observe(at(10)) {
		t.Error("first event should be on time")
	}
	if got := wm.Watermark(); !got.Equal(at(5)) {
		t.Errorf("watermark = %v, want %v", got, at(5))
	}
	if !wm.Observe(at(6)) { // within lateness allowance
		t.Error("event at watermark+1 should be on time")
	}
	if wm.Observe(at(4)) { // before watermark: late
		t.Error("event before watermark should be late")
	}
	if wm.Late != 1 {
		t.Errorf("late count = %d, want 1", wm.Late)
	}
	// Watermark never regresses.
	wm.Observe(at(8))
	if got := wm.Watermark(); !got.Equal(at(5)) {
		t.Errorf("watermark regressed to %v", got)
	}
}

func TestTumblingWindowCountsPerKey(t *testing.T) {
	var events []Event[int]
	// Key a: events at 0..9s; key b: events at 0..19s, windows of 10s.
	for i := 0; i < 10; i++ {
		events = append(events, E("a", at(i), 1))
	}
	for i := 0; i < 20; i++ {
		events = append(events, E("b", at(i), 1))
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	out := TumblingWindow(FromSlice(events), 10*time.Second, 0,
		func(Window) int { return 0 },
		func(acc int, e Event[int]) int { return acc + 1 },
	)
	got := Collect(out)
	counts := map[string][]int{}
	for _, e := range got {
		counts[e.Key] = append(counts[e.Key], e.Value.Value)
		if !e.Value.Window.End.Equal(e.Time) {
			t.Errorf("event time should be window end: %v vs %v", e.Time, e.Value.Window.End)
		}
		if e.Value.Window.End.Sub(e.Value.Window.Start) != 10*time.Second {
			t.Errorf("window size wrong: %+v", e.Value.Window)
		}
	}
	if len(counts["a"]) != 1 || counts["a"][0] != 10 {
		t.Errorf("a windows = %v, want [10]", counts["a"])
	}
	if len(counts["b"]) != 2 || counts["b"][0] != 10 || counts["b"][1] != 10 {
		t.Errorf("b windows = %v, want [10 10]", counts["b"])
	}
}

func TestTumblingWindowFiresOnWatermark(t *testing.T) {
	// With zero lateness, a window fires as soon as an event past its end
	// arrives, before the stream closes.
	events := []Event[int]{
		E("k", at(1), 1), E("k", at(5), 1), E("k", at(12), 1),
	}
	out := TumblingWindow(FromSlice(events), 10*time.Second, 0,
		func(Window) int { return 0 },
		func(acc int, e Event[int]) int { return acc + 1 },
	)
	first := <-out
	if first.Value.Value != 2 {
		t.Errorf("first fired window count = %d, want 2", first.Value.Value)
	}
	rest := Collect(out)
	if len(rest) != 1 || rest[0].Value.Value != 1 {
		t.Errorf("remaining windows = %v", rest)
	}
}

func TestTumblingWindowDropsLateEvents(t *testing.T) {
	events := []Event[int]{
		E("k", at(0), 1), E("k", at(30), 1),
		E("k", at(2), 1), // 28s late, beyond the 5s allowance: dropped
	}
	out := TumblingWindow(FromSlice(events), 10*time.Second, 5*time.Second,
		func(Window) int { return 0 },
		func(acc int, e Event[int]) int { return acc + 1 },
	)
	got := Collect(out)
	total := 0
	for _, e := range got {
		total += e.Value.Value
	}
	if total != 2 {
		t.Errorf("window total = %d, want 2 (late event dropped)", total)
	}
}

func TestSlidingWindowOverlap(t *testing.T) {
	// Window 10s sliding 5s: an event at t=7 belongs to windows [0,10) and [5,15).
	events := []Event[int]{E("k", at(7), 1)}
	out := SlidingWindow(FromSlice(events), 10*time.Second, 5*time.Second, 0,
		func(Window) int { return 0 },
		func(acc int, e Event[int]) int { return acc + 1 },
	)
	got := Collect(out)
	if len(got) != 2 {
		t.Fatalf("event should appear in 2 windows, got %d", len(got))
	}
	starts := []time.Time{got[0].Value.Window.Start, got[1].Value.Window.Start}
	sort.Slice(starts, func(i, j int) bool { return starts[i].Before(starts[j]) })
	if !starts[0].Equal(at(0)) || !starts[1].Equal(at(5)) {
		t.Errorf("window starts = %v", starts)
	}
}

func TestWindowAggregateAverage(t *testing.T) {
	// Fold speed values into (sum, count) and verify the average,
	// mirroring the paper's per-trajectory online statistics.
	type agg struct {
		sum float64
		n   int
	}
	var events []Event[float64]
	for i := 0; i < 10; i++ {
		events = append(events, E("vessel-1", at(i), float64(i)))
	}
	out := TumblingWindow(FromSlice(events), 10*time.Second, 0,
		func(Window) agg { return agg{} },
		func(a agg, e Event[float64]) agg { return agg{a.sum + e.Value, a.n + 1} },
	)
	got := Collect(out)
	if len(got) != 1 {
		t.Fatalf("got %d windows, want 1", len(got))
	}
	avg := got[0].Value.Value.sum / float64(got[0].Value.Value.n)
	if avg != 4.5 {
		t.Errorf("avg = %v, want 4.5", avg)
	}
}

func TestPipelineComposition(t *testing.T) {
	// A realistic mini-pipeline: parse → filter invalid → window-count.
	raw := []Event[string]{
		E("v1", at(0), "ok"), E("v1", at(1), "bad"), E("v1", at(2), "ok"),
		E("v2", at(3), "ok"), E("v1", at(11), "ok"),
	}
	valid := Filter(FromSlice(raw), func(e Event[string]) bool { return e.Value == "ok" })
	counted := TumblingWindow(valid, 10*time.Second, 0,
		func(Window) int { return 0 },
		func(acc int, _ Event[string]) int { return acc + 1 },
	)
	got := Collect(counted)
	byKey := map[string]int{}
	for _, e := range got {
		byKey[e.Key] += e.Value.Value
	}
	if byKey["v1"] != 3 || byKey["v2"] != 1 {
		t.Errorf("counts = %v", byKey)
	}
}

func TestPartitionKeyAffinityAndOrder(t *testing.T) {
	const n = 4
	var events []Event[int]
	for i := 0; i < 200; i++ {
		events = append(events, E(fmt.Sprintf("mover-%d", i%13), t0.Add(time.Duration(i)), i))
	}
	outs := Partition(FromSlice(events), n, 256)
	if len(outs) != n {
		t.Fatalf("got %d substreams, want %d", len(outs), n)
	}
	var wg sync.WaitGroup
	collected := make([][]Event[int], n)
	for i, out := range outs {
		wg.Add(1)
		go func(i int, out <-chan Event[int]) {
			defer wg.Done()
			collected[i] = Collect(out)
		}(i, out)
	}
	wg.Wait()

	total := 0
	for i, evs := range collected {
		total += len(evs)
		last := -1
		for _, e := range evs {
			// Routing parity with the shard plane (and hence the broker).
			if got := shard.Route(e.Key, n); got != i {
				t.Fatalf("key %q on substream %d, Route says %d", e.Key, i, got)
			}
			// Per-substream order follows input order.
			if e.Value <= last {
				t.Fatalf("substream %d out of order: %d after %d", i, e.Value, last)
			}
			last = e.Value
		}
	}
	if total != len(events) {
		t.Fatalf("substreams hold %d events, want %d", total, len(events))
	}
}

func TestPartitionSingle(t *testing.T) {
	events := []Event[int]{E("a", t0, 1), E("b", t0.Add(1), 2)}
	outs := Partition(FromSlice(events), 0, 4)
	if len(outs) != 1 {
		t.Fatalf("n<1 must clamp to one substream, got %d", len(outs))
	}
	if got := Collect(outs[0]); len(got) != 2 {
		t.Fatalf("lone substream got %d events", len(got))
	}
}
