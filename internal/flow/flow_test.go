package flow

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"datacron/internal/obs"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestClassify pins the priority model: first report and post-gap reports
// are Critical, well-covered reports are Bulk, the band between is Standard.
func TestClassify(t *testing.T) {
	s := NewShedder(10, 20, time.Minute, nil)
	if got := s.Classify("v1", t0); got != Critical {
		t.Fatalf("first report = %v, want Critical", got)
	}
	if err := s.Admit("v1", t0, 0); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		gap  time.Duration
		want Priority
	}{
		{10 * time.Second, Bulk},     // well inside half the window
		{30 * time.Second, Bulk},     // exactly half: still covered
		{31 * time.Second, Standard}, // between half and full window
		{time.Minute, Critical},      // full window: refreshes a stale synopsis
		{2 * time.Minute, Critical},
	}
	for _, c := range cases {
		if got := s.Classify("v1", t0.Add(c.gap)); got != c.want {
			t.Errorf("gap %v = %v, want %v", c.gap, got, c.want)
		}
	}
}

// TestAdmitWatermarks drives one mover through the three pressure levels:
// below the low watermark everything is admitted; between the watermarks
// Bulk is shed; above the high watermark only Critical survives.
func TestAdmitWatermarks(t *testing.T) {
	s := NewShedder(10, 20, time.Minute, nil)
	if err := s.Admit("v1", t0, 0); err != nil { // Critical seed
		t.Fatal(err)
	}

	// Level 0: a Bulk record sails through.
	if err := s.Admit("v1", t0.Add(time.Second), 9); err != nil {
		t.Fatalf("level 0 bulk: %v", err)
	}

	// Level 1: Bulk shed, Standard admitted.
	if err := s.Admit("v1", t0.Add(2*time.Second), 10); !errors.Is(err, ErrShed) {
		t.Fatalf("level 1 bulk: err = %v, want ErrShed", err)
	}
	if err := s.Admit("v1", t0.Add(40*time.Second), 10); err != nil {
		t.Fatalf("level 1 standard: %v", err)
	}

	// Level 2: Standard shed too; Critical still admitted.
	if err := s.Admit("v1", t0.Add(80*time.Second), 20); !errors.Is(err, ErrShed) {
		t.Fatalf("level 2 standard: err = %v, want ErrShed", err)
	}
	if err := s.Admit("v1", t0.Add(3*time.Minute), 20); err != nil {
		t.Fatalf("level 2 critical: %v", err)
	}

	st := s.Stats()
	want := Stats{Admitted: 4, ShedBulk: 1, ShedStandard: 1, Level: 2}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
	if st.Shed() != 2 {
		t.Fatalf("Shed() = %d, want 2", st.Shed())
	}
}

// TestShedDoesNotAdvanceCoverage: a shed record must not update the mover's
// last-kept time, or the shedder would count records it dropped as coverage
// and starve the mover of its Critical refresh.
func TestShedDoesNotAdvanceCoverage(t *testing.T) {
	s := NewShedder(1, 2, time.Minute, nil)
	if err := s.Admit("v1", t0, 0); err != nil {
		t.Fatal(err)
	}
	// Sustained level-2 pressure: everything but Critical is shed tick after
	// tick, the gap since the last KEPT record keeps growing, and exactly at
	// the coverage window the record turns Critical and must be admitted.
	step := 10 * time.Second
	admitted := 0
	for i := 1; i <= 6; i++ { // t0+10s ... t0+60s
		if err := s.Admit("v1", t0.Add(time.Duration(i)*step), 50); err == nil {
			admitted++
			if got := t0.Add(time.Duration(i) * step); !got.Equal(t0.Add(time.Minute)) {
				t.Fatalf("admitted at gap %v, want only at the full window", time.Duration(i)*step)
			}
		}
	}
	if admitted != 1 {
		t.Fatalf("admitted %d refreshes under sustained pressure, want exactly 1", admitted)
	}
}

// TestErrShedCarriesContext: the wrapped message names the mover, priority
// and depth so shed decisions are debuggable from logs.
func TestErrShedCarriesContext(t *testing.T) {
	s := NewShedder(0, 0, time.Minute, nil)
	if err := s.Admit("v9", t0, 5); err != nil {
		t.Fatal(err)
	}
	err := s.Admit("v9", t0.Add(time.Second), 5)
	if !errors.Is(err, ErrShed) {
		t.Fatalf("err = %v, want ErrShed", err)
	}
	msg := err.Error()
	for _, want := range []string{"v9", "bulk", "depth 5"} {
		if !strings.Contains(msg, want) {
			t.Errorf("shed error %q missing %q", msg, want)
		}
	}
}

// TestShedderMetrics checks the obs counters and the level gauge move with
// the decisions, and that a nil registry is safe.
func TestShedderMetrics(t *testing.T) {
	reg := obs.NewRegistry(nil)
	s := NewShedder(1, 2, time.Minute, reg)
	if err := s.Admit("v1", t0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Admit("v1", t0.Add(time.Second), 1); !errors.Is(err, ErrShed) {
		t.Fatal("expected bulk shed at the low watermark")
	}
	snap := reg.Snapshot()
	if got := snap.Counter("flow.admitted"); got != 1 {
		t.Fatalf("flow.admitted = %d, want 1", got)
	}
	if got := snap.Counter("flow.shed.bulk"); got != 1 {
		t.Fatalf("flow.shed.bulk = %d, want 1", got)
	}
	if lvl, ok := snap.Gauge("flow.level"); !ok || lvl != 1 {
		t.Fatalf("flow.level = %v, %v; want 1", lvl, ok)
	}
}

// TestConfigDefaults pins the derived watermarks and the Enabled gate.
func TestConfigDefaults(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero Config must be disabled")
	}
	c := Config{QueueCap: 100}.WithDefaults(4)
	if !c.Enabled() || c.ShedLow != 200 || c.ShedHigh != 340 {
		t.Fatalf("derived config = %+v, want low 200 high 340", c)
	}
	if c.CoverageWindow != 5*time.Minute {
		t.Fatalf("default coverage = %v", c.CoverageWindow)
	}
	// Explicit watermarks survive, inverted ones are clamped.
	c = Config{QueueCap: 10, ShedLow: 9, ShedHigh: 3}.WithDefaults(1)
	if c.ShedLow != 9 || c.ShedHigh != 9 {
		t.Fatalf("clamped config = %+v, want high clamped to low", c)
	}
}

// TestPriorityString covers the display names used in logs and shed errors.
func TestPriorityString(t *testing.T) {
	for p, want := range map[Priority]string{Bulk: "bulk", Standard: "standard", Critical: "critical"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
	if got := Priority(9).String(); got != fmt.Sprintf("priority(%d)", 9) {
		t.Errorf("unknown priority = %q", got)
	}
}
