// Package flow implements the admission-control and load-shedding plane of
// the ingest path. The paper's setting is *time-critical* mobility
// forecasting: when a bursty surveillance feed outruns processing, the
// system must bound latency and memory with a controlled response rather
// than queue without limit. Three mechanisms compose:
//
//   - bounded broker topics (msg.TopicLimit) give every partition a
//     capacity and an overload policy — block, drop-newest, or
//     drop-oldest-uncommitted;
//   - credit-based shard submission (shard.Config.Queue credits) makes a
//     slow worker push back on the coordinator instead of ballooning its
//     queue;
//   - the Shedder in this package drops low-value records before they are
//     even produced, driven by queue-depth watermarks.
//
// The Shedder's value model follows the synopses architecture: a raw
// position update is redundant once the mover's trajectory synopsis covers
// that time span (the synopsis reconstructs the position within error
// bounds), so under pressure it is the cheapest record to lose. Records
// that seed or refresh a synopsis — a mover's first report, or one after a
// coverage gap — are critical and are never shed.
package flow

import (
	"errors"
	"fmt"
	"time"

	"datacron/internal/msg"
	"datacron/internal/obs"
)

// ErrShed is returned by Shedder.Admit for records dropped by priority-aware
// load shedding. Callers distinguish it from hard failures with errors.Is:
// a shed is bookkeeping, not an error to abort on.
var ErrShed = errors.New("flow: record shed")

// Priority ranks a record's value under overload, lowest first.
type Priority int

const (
	// Bulk marks a raw position update well covered by the mover's synopsis:
	// reconstructable within error bounds, first to shed.
	Bulk Priority = iota
	// Standard marks an ordinary record: shed only above the high watermark.
	Standard
	// Critical marks a record that seeds or refreshes per-mover state (first
	// report of a mover, or first after a coverage gap). Never shed.
	Critical
)

func (p Priority) String() string {
	switch p {
	case Bulk:
		return "bulk"
	case Standard:
		return "standard"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// Config assembles the whole backpressure plane for a pipeline; core.WithFlow
// threads it through broker limits, the shedder and the shard plane.
type Config struct {
	// QueueCap bounds the raw topic's per-partition uncommitted backlog.
	// 0 leaves the topic unbounded and disables the plane.
	QueueCap int
	// Policy is what Produce does when a partition is at capacity.
	Policy msg.OverloadPolicy
	// ShedLow and ShedHigh are total-backlog watermarks (summed over
	// partitions) for the shedder: at ShedLow, Bulk records are shed; at
	// ShedHigh everything but Critical is shed. Zero values derive defaults
	// from QueueCap (50% and 85% of the total capacity).
	ShedLow  int
	ShedHigh int
	// CoverageWindow is the per-mover event-time gap above which a record
	// counts as Critical (it refreshes a stale synopsis). Records within
	// half the window of the last kept one are Bulk. Default 5 minutes.
	CoverageWindow time.Duration
	// ShardQueue overrides the shard plane's per-worker credit pool
	// (default: twice the poll batch).
	ShardQueue int
}

// Enabled reports whether the plane is active.
func (c Config) Enabled() bool { return c.QueueCap > 0 }

// WithDefaults fills derived fields given the number of partitions the
// capacity applies to.
func (c Config) WithDefaults(partitions int) Config {
	if partitions < 1 {
		partitions = 1
	}
	total := c.QueueCap * partitions
	if c.ShedLow <= 0 {
		c.ShedLow = total / 2
	}
	if c.ShedHigh <= 0 {
		c.ShedHigh = total * 85 / 100
	}
	if c.ShedHigh < c.ShedLow {
		c.ShedHigh = c.ShedLow
	}
	if c.CoverageWindow <= 0 {
		c.CoverageWindow = 5 * time.Minute
	}
	return c
}

// Stats is a value-type snapshot of a Shedder.
type Stats struct {
	Admitted     int64 `json:"admitted"`      // records admitted
	ShedBulk     int64 `json:"shed_bulk"`     // Bulk records shed at or above the low watermark
	ShedStandard int64 `json:"shed_standard"` // Standard records shed at or above the high watermark
	Level        int   `json:"level"`         // last observed pressure level: 0 ok, 1 low, 2 high
}

// Shed returns the total shed count.
func (s Stats) Shed() int64 { return s.ShedBulk + s.ShedStandard }

// Shedder performs priority-aware load shedding at the ingest boundary.
// It is driven by the single ingest goroutine and is not safe for
// concurrent use.
type Shedder struct {
	low, high int
	coverage  time.Duration
	lastKept  map[string]time.Time // mover ID -> event time of last admitted record
	stats     Stats

	// metric handles, nil-safe no-ops when reg is nil
	admitted *obs.Counter
	shedBulk *obs.Counter
	shedStd  *obs.Counter
	level    *obs.Gauge
	// Per-priority freshness accounting at the admission boundary: how
	// stale each class of record already is when it is allowed in. Indexed
	// by Priority; clock comes from the registry so simulated time works.
	clock obs.Clock
	lag   [3]obs.LagStage
}

// NewShedder builds a shedder with low/high backlog watermarks and the
// per-mover coverage window. reg may be nil for an unobserved shedder.
func NewShedder(low, high int, coverage time.Duration, reg *obs.Registry) *Shedder {
	if high < low {
		high = low
	}
	if coverage <= 0 {
		coverage = 5 * time.Minute
	}
	return &Shedder{
		low:      low,
		high:     high,
		coverage: coverage,
		lastKept: make(map[string]time.Time),
		admitted: reg.Counter("flow.admitted"),
		shedBulk: reg.Counter("flow.shed.bulk"),
		shedStd:  reg.Counter("flow.shed.standard"),
		level:    reg.Gauge("flow.level"),
		clock:    reg.Clock(),
		lag: [3]obs.LagStage{
			Bulk:     obs.NewLagStage(reg, "ingest.bulk"),
			Standard: obs.NewLagStage(reg, "ingest.standard"),
			Critical: obs.NewLagStage(reg, "ingest.critical"),
		},
	}
}

// Classify ranks a record by how much per-mover state would be lost if it
// were shed, given the records admitted so far.
func (s *Shedder) Classify(id string, t time.Time) Priority {
	last, seen := s.lastKept[id]
	if !seen {
		return Critical // first report seeds the mover's synopsis
	}
	gap := t.Sub(last)
	if gap >= s.coverage {
		return Critical // refreshes a stale synopsis
	}
	if gap <= s.coverage/2 {
		return Bulk // well covered: reconstructable from the synopsis
	}
	return Standard
}

// Admit decides one record given the current queue depth (the bounded
// topic's total backlog). It returns nil and updates per-mover coverage when
// the record should be produced, or an error wrapping ErrShed when it was
// shed. Critical records are always admitted.
func (s *Shedder) Admit(id string, t time.Time, depth int) error {
	level := 0
	switch {
	case depth >= s.high:
		level = 2
	case depth >= s.low:
		level = 1
	}
	s.stats.Level = level
	s.level.Set(float64(level))
	pri := s.Classify(id, t)
	shed := (level == 2 && pri != Critical) || (level == 1 && pri == Bulk)
	if shed {
		switch pri {
		case Bulk:
			s.stats.ShedBulk++
			s.shedBulk.Inc()
		default:
			s.stats.ShedStandard++
			s.shedStd.Inc()
		}
		return fmt.Errorf("%w: mover %s priority %s at depth %d", ErrShed, id, pri, depth)
	}
	if last, seen := s.lastKept[id]; !seen || t.After(last) {
		s.lastKept[id] = t
	}
	s.stats.Admitted++
	s.admitted.Inc()
	// Freshness at admission, per priority class ("lag.ingest.<class>.*"):
	// only admitted records are observed — a shed record never enters the
	// pipeline, so it has no freshness budget to account for.
	if pri >= 0 && int(pri) < len(s.lag) {
		s.lag[pri].Observe(s.clock.Now(), t)
	}
	return nil
}

// Stats returns the shedder's counters so far.
func (s *Shedder) Stats() Stats { return s.stats }
